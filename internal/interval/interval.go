// Package interval provides the acceptance- and confidence-interval
// arithmetic shared by the statistical conformance harness
// (internal/statcheck), the estimator-convergence tests in internal/core,
// and the run supervisor's accuracy-aware stopping rule
// (internal/core/supervisor.go).
//
// Every sampler in this repository reports binomial proportions (or a
// fixed affine transform of one), so the two-sided Hoeffding inequality
// gives a distribution-free acceptance band: for X ~ Bin(n, p),
//
//	Pr( |X/n − p| ≥ t ) ≤ 2·exp(−2·n·t²).
//
// Solving 2·exp(−2·n·t²) = α for t yields the half-width below. A test
// that rejects only outside ±HoeffdingHalfWidth(n, α) is therefore wrong
// with probability at most α per comparison regardless of p — which is
// what makes a corpus-wide failure budget sound: with α = 1e-9 and a few
// thousand comparisons, the expected number of false alarms is ~1e-6.
//
// The package is deliberately dependency-free so that internal/core and
// tests inside it can import it without creating an import cycle with
// internal/statcheck (which imports core).
package interval

import "math"

// HoeffdingHalfWidth returns the two-sided acceptance half-width t such
// that a binomial proportion over n trials deviates from its mean by at
// least t with probability at most alpha:
//
//	t = sqrt( ln(2/alpha) / (2n) ).
//
// It panics if n <= 0 or alpha is outside (0, 1).
func HoeffdingHalfWidth(n int, alpha float64) float64 {
	if n <= 0 {
		panic("interval: HoeffdingHalfWidth with non-positive trial count")
	}
	checkAlpha(alpha)
	return math.Sqrt(math.Log(2/alpha) / (2 * float64(n)))
}

// TrialsForHalfWidth returns the smallest trial count n for which
// HoeffdingHalfWidth(n, alpha) <= eps:
//
//	n = ceil( ln(2/alpha) / (2·eps²) ).
//
// It panics if eps <= 0 or alpha is outside (0, 1).
func TrialsForHalfWidth(eps, alpha float64) int {
	if eps <= 0 {
		panic("interval: TrialsForHalfWidth with non-positive eps")
	}
	checkAlpha(alpha)
	return int(math.Ceil(math.Log(2/alpha) / (2 * eps * eps)))
}

// ScaledHalfWidth returns the acceptance half-width for an estimator that
// reports scale·(affine transform of a binomial proportion over n
// trials), i.e. scale·HoeffdingHalfWidth(n, alpha). The Karp-Luby
// estimate P̂ = (1 − Cnt/N·S_i)·Pr[E(B_i)] moves by Pr[E(B_i)]·S_i per
// unit of Cnt/N, so its half-width uses scale = Pr[E(B_i)]·S_i. A
// non-positive scale returns 0 (the estimate is then deterministic).
func ScaledHalfWidth(scale float64, n int, alpha float64) float64 {
	if scale <= 0 {
		return 0
	}
	return scale * HoeffdingHalfWidth(n, alpha)
}

// NormalHalfWidth returns the normal-approximation confidence half-width
// for a binomial proportion with x successes over n trials at critical
// value z (1.96 ≈ 95%, 2.58 ≈ 99%):
//
//	t = z · sqrt( p̃(1−p̃) / ñ ),  p̃ = (x + z²/2) / ñ,  ñ = n + z².
//
// The Agresti–Coull adjustment (z²/2 pseudo-successes, z² pseudo-trials)
// keeps the width honest at the extremes: a plain Wald width collapses to
// zero when x = 0 or x = n, which would let an adaptive run declare an
// ε-accurate answer after a handful of unanimous trials. Unlike the
// distribution-free Hoeffding band, this width shrinks with p̃(1−p̃), so
// confident leaders (p near 0 or 1) stop much earlier — which is exactly
// what accuracy-aware stopping wants. It panics if n <= 0 or z <= 0.
func NormalHalfWidth(x int64, n int, z float64) float64 {
	if n <= 0 {
		panic("interval: NormalHalfWidth with non-positive trial count")
	}
	if z <= 0 {
		panic("interval: NormalHalfWidth with non-positive z")
	}
	nt := float64(n) + z*z
	pt := (float64(x) + z*z/2) / nt
	return z * math.Sqrt(pt*(1-pt)/nt)
}

func checkAlpha(alpha float64) {
	if !(alpha > 0 && alpha < 1) {
		panic("interval: alpha outside (0, 1)")
	}
}
