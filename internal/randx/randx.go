// Package randx provides deterministic, splittable pseudo-random number
// generation for the MPMB sampling algorithms.
//
// All samplers in this repository draw from randx rather than math/rand so
// that every experiment is reproducible from a single seed: a trial's
// stream can be derived from (seed, trial index) without any shared
// mutable state, which also makes parallel trials race-free by
// construction.
//
// The core generator is xoshiro256**, seeded through splitmix64 as
// recommended by its authors. On top of it the package offers the
// distributions the paper's workloads need: Bernoulli edge flips, uniform
// and normal weights, Zipf-distributed degrees, and alias-method weighted
// choice (used by the Karp-Luby estimator to pick a candidate butterfly
// proportionally to Pr[E(B_j\B_i)]).
package randx

import (
	"math"
)

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is used to expand a single user seed into the four xoshiro words and
// to derive independent per-trial seeds.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. The zero value is not valid; construct
// with New or seed through DeriveInto. The four state words are named
// fields rather than an array so Uint64's state updates are plain field
// selectors — cheap enough for the compiler to inline the generator into
// sampling loops.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = SplitMix64(&sm)
	r.s1 = SplitMix64(&sm)
	r.s2 = SplitMix64(&sm)
	r.s3 = SplitMix64(&sm)
	// xoshiro must not start from the all-zero state; splitmix64 output
	// of four consecutive values is never all zero, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// Derive returns a new generator whose stream is independent of r's for
// all practical purposes, identified by id. It does not disturb r's state,
// so deriving per-trial generators is safe while r keeps producing values.
func (r *RNG) Derive(id uint64) *RNG {
	d := &RNG{}
	r.DeriveInto(id, d)
	return d
}

// DeriveInto seeds dst with exactly the state Derive(id) would return,
// without allocating. Trial kernels that derive one stream per trial reuse
// a single worker-local RNG through this method, so the per-trial setup is
// a few register operations instead of a heap allocation.
func (r *RNG) DeriveInto(id uint64, dst *RNG) {
	// Mix the current state with the id through splitmix64.
	sm := r.s0 ^ (r.s1 * 0x9e3779b97f4a7c15) ^ (id+1)*0xd1342543de82ef95
	dst.s0 = SplitMix64(&sm)
	dst.s1 = SplitMix64(&sm)
	dst.s2 = SplitMix64(&sm)
	dst.s3 = SplitMix64(&sm)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits. The rotations are
// spelled out with constant shifts (rather than through rotl) to keep the
// function within the compiler's inlining budget — sampling kernels call
// this once per undetermined edge, where a function call would dominate
// the draw itself.
func (r *RNG) Uint64() uint64 {
	s1 := r.s1
	x := s1 * 5
	x = (x<<7 | x>>57) * 9
	s2 := r.s2 ^ r.s0
	s3 := r.s3 ^ s1
	r.s1 = s1 ^ s2
	r.s0 ^= s3
	r.s2 = s2 ^ s1<<17
	r.s3 = s3<<45 | s3>>19
	return x
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values p <= 0 are always
// false and p >= 1 always true, so edge probabilities of exactly 0 or 1
// behave deterministically (the hardness gadget relies on this).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bernoulli threshold sentinels. BernoulliThreshold maps the
// deterministic probabilities to them; BernoulliThresholded consumes no
// random word for either, mirroring Bernoulli's p <= 0 / p >= 1 fast
// paths draw for draw.
const (
	// BernoulliNever is the threshold of p <= 0: always false, no draw.
	BernoulliNever uint64 = 0
	// BernoulliAlways is the threshold of p >= 1: always true, no draw.
	// It is unreachable for p in (0, 1), whose thresholds lie in
	// [1, 2^53].
	BernoulliAlways uint64 = ^uint64(0)
)

// BernoulliThreshold precomputes Bernoulli(p) as an integer threshold T
// such that, for one raw generator word u,
//
//	u>>11 < T  ⇔  Float64() < p
//
// bit for bit: Float64 is exactly (u>>11)·2⁻⁵³ (the shift keeps 53 bits
// and both the int→float conversion and the power-of-two division are
// exact), and p·2⁵³ is likewise exact for p in (0, 1), so the integer
// comparison against T = ⌈p·2⁵³⌉ reproduces the float comparison for
// every u. Sampling kernels precompute T once per edge and replace a
// float multiply-compare per draw with a shift and an integer compare —
// with a stream position identical to calling Bernoulli.
func BernoulliThreshold(p float64) uint64 {
	if p <= 0 {
		return BernoulliNever
	}
	if p >= 1 {
		return BernoulliAlways
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// BernoulliThresholded reports true with the probability encoded by a
// BernoulliThreshold value, consuming exactly the random words Bernoulli
// would for the same probability: none for the sentinels, one otherwise.
func (r *RNG) BernoulliThresholded(t uint64) bool {
	if t == BernoulliNever {
		return false
	}
	if t == BernoulliAlways {
		return true
	}
	return r.Uint64()>>11 < t
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// UniformRange returns a uniform value in [lo, hi).
func (r *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the polar (Marsaglia) method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalClamped draws Normal(mean, stddev) and clamps the result into
// [lo, hi]. The paper's Protein dataset synthesizes edge probabilities as
// Normal(0.5, 0.2) clipped into a valid probability range.
func (r *RNG) NormalClamped(mean, stddev, lo, hi float64) float64 {
	x := r.Normal(mean, stddev)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Perm returns a uniformly random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
