// Package randx provides deterministic, splittable pseudo-random number
// generation for the MPMB sampling algorithms.
//
// All samplers in this repository draw from randx rather than math/rand so
// that every experiment is reproducible from a single seed: a trial's
// stream can be derived from (seed, trial index) without any shared
// mutable state, which also makes parallel trials race-free by
// construction.
//
// The core generator is xoshiro256**, seeded through splitmix64 as
// recommended by its authors. On top of it the package offers the
// distributions the paper's workloads need: Bernoulli edge flips, uniform
// and normal weights, Zipf-distributed degrees, and alias-method weighted
// choice (used by the Karp-Luby estimator to pick a candidate butterfly
// proportionally to Pr[E(B_j\B_i)]).
package randx

import (
	"math"
)

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is used to expand a single user seed into the four xoshiro words and
// to derive independent per-trial seeds.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. The zero value is not valid; construct
// with New or NewFromState.
type RNG struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 output
	// of four consecutive values is never all zero, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Derive returns a new generator whose stream is independent of r's for
// all practical purposes, identified by id. It does not disturb r's state,
// so deriving per-trial generators is safe while r keeps producing values.
func (r *RNG) Derive(id uint64) *RNG {
	// Mix the current state with the id through splitmix64.
	sm := r.s[0] ^ (r.s[1] * 0x9e3779b97f4a7c15) ^ (id+1)*0xd1342543de82ef95
	d := &RNG{}
	for i := range d.s {
		d.s[i] = SplitMix64(&sm)
	}
	return d
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values p <= 0 are always
// false and p >= 1 always true, so edge probabilities of exactly 0 or 1
// behave deterministically (the hardness gadget relies on this).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// UniformRange returns a uniform value in [lo, hi).
func (r *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the polar (Marsaglia) method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalClamped draws Normal(mean, stddev) and clamps the result into
// [lo, hi]. The paper's Protein dataset synthesizes edge probabilities as
// Normal(0.5, 0.2) clipped into a valid probability range.
func (r *RNG) NormalClamped(mean, stddev, lo, hi float64) float64 {
	x := r.Normal(mean, stddev)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Perm returns a uniformly random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
