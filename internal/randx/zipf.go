package randx

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the cumulative mass so sampling is O(log n)
// by binary search, which is plenty for dataset generation (the only
// consumer) and avoids the rejection-method edge cases of math/rand's
// Zipf for small exponents.
type Zipf struct {
	cum []float64 // cumulative probabilities, cum[n-1] == 1
}

// NewZipf builds a Zipf distribution over [0, n) with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("randx: NewZipf with non-positive exponent")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	inv := 1 / total
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1
	return &Zipf{cum: cum}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws one value in [0, N()).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Alias is a Walker alias table for O(1) weighted sampling from a fixed
// discrete distribution. The Karp-Luby estimator (Algorithm 4 in the
// paper) samples a candidate butterfly index j with probability
// Pr[E(B_j\B_i)] / S_i on every trial; the alias table makes that draw
// constant-time regardless of how many candidates precede B_i.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from the given non-negative weights.
// Weights need not be normalized. It panics if weights is empty or if all
// weights are zero or any weight is negative/NaN.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("randx: NewAlias with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("randx: NewAlias with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("randx: NewAlias with all-zero weights")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Numerical residue; these columns are effectively full.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// N returns the support size.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index with probability proportional to its weight.
func (a *Alias) Sample(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
