package randx

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(0.3) {
			n++
		}
	}
	_ = n
}

func BenchmarkDerive(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Derive(uint64(i))
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 1000)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	a := NewAlias(weights)
	r := New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(r)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(10000, 1.1)
	r := New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}
