package randx

import (
	"math"
	"testing"
)

func TestZipfDistribution(t *testing.T) {
	const n, trials = 10, 300000
	z := NewZipf(n, 1.0)
	r := New(10)
	var counts [n]int
	for i := 0; i < trials; i++ {
		v := z.Sample(r)
		if v < 0 || v >= n {
			t.Fatalf("Zipf sample out of range: %d", v)
		}
		counts[v]++
	}
	// Expected mass of item i is (1/(i+1)) / H_n.
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	for i := 0; i < n; i++ {
		want := (1 / float64(i+1)) / h
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Zipf mass of %d = %v, want ≈ %v", i, got, want)
		}
	}
	// Monotone decreasing counts (statistically robust at these margins).
	for i := 1; i < n; i++ {
		if counts[i] > counts[i-1]+trials/100 {
			t.Fatalf("Zipf counts not decreasing: %v", counts)
		}
	}
}

// TestZipfBoundaries covers the support and skew extremes table-driven:
// a single-element support must always return 0 regardless of exponent,
// extreme skew must concentrate (essentially) all mass on index 0, and
// near-zero skew must still reach the tail of the support.
func TestZipfBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		s      float64
		seed   uint64
		draws  int
		verify func(t *testing.T, counts []int, draws int)
	}{
		{"n=1 degenerate support", 1, 1, 21, 1000, func(t *testing.T, counts []int, draws int) {
			if counts[0] != draws {
				t.Errorf("n=1 must always sample 0, got counts %v", counts)
			}
		}},
		{"n=1 with extreme skew", 1, 100, 22, 1000, func(t *testing.T, counts []int, draws int) {
			if counts[0] != draws {
				t.Errorf("n=1 must always sample 0, got counts %v", counts)
			}
		}},
		{"max skew concentrates on 0", 8, 50, 23, 5000, func(t *testing.T, counts []int, draws int) {
			// P(index >= 1) = 2^-50/Z ≈ 1e-15: index 0 every time.
			if counts[0] != draws {
				t.Errorf("s=50 sampled beyond index 0: %v", counts)
			}
		}},
		{"near-zero skew reaches the tail", 8, 0.01, 24, 20000, func(t *testing.T, counts []int, draws int) {
			for i, c := range counts {
				if c == 0 {
					t.Errorf("s=0.01 never sampled index %d: %v", i, counts)
				}
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			z := NewZipf(c.n, c.s)
			if z.N() != c.n {
				t.Fatalf("N() = %d, want %d", z.N(), c.n)
			}
			r := New(c.seed)
			counts := make([]int, c.n)
			for i := 0; i < c.draws; i++ {
				v := z.Sample(r)
				if v < 0 || v >= c.n {
					t.Fatalf("sample %d outside [0, %d)", v, c.n)
				}
				counts[v]++
			}
			c.verify(t, counts, c.draws)
		})
	}
}

// TestAliasMaxSkew: one weight dominating by many orders of magnitude
// must not destabilize the table construction.
func TestAliasMaxSkew(t *testing.T) {
	a := NewAlias([]float64{1e15, 1, 1, 1})
	r := New(25)
	const draws = 50000
	other := 0
	for i := 0; i < draws; i++ {
		if a.Sample(r) != 0 {
			other++
		}
	}
	// P(index != 0) = 3e-15: any non-zero draw here is a table bug.
	if other != 0 {
		t.Errorf("dominant weight lost %d/%d draws to 1e-15 tail mass", other, draws)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(5, 0) },
		func() { NewZipf(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewZipf accepted invalid parameters")
				}
			}()
			fn()
		}()
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	if a.N() != 4 {
		t.Fatalf("N = %d, want 4", a.N())
	}
	r := New(11)
	const trials = 400000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("alias mass of %d = %v, want ≈ %v", i, got, want)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0, 3})
	r := New(12)
	for i := 0; i < 100000; i++ {
		v := a.Sample(r)
		if v == 0 || v == 2 {
			t.Fatalf("alias sampled zero-weight index %d", v)
		}
	}
}

func TestAliasSingleElement(t *testing.T) {
	a := NewAlias([]float64{7.5})
	r := New(13)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-element alias must always return 0")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for _, weights := range [][]float64{
		nil,
		{},
		{0, 0},
		{1, -1},
		{math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%v) did not panic", weights)
				}
			}()
			NewAlias(weights)
		}()
	}
}
