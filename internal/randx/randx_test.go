package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	d1 := root.Derive(1)
	d2 := root.Derive(2)
	d1again := root.Derive(1)
	for i := 0; i < 100; i++ {
		v1, v2, v1a := d1.Uint64(), d2.Uint64(), d1again.Uint64()
		if v1 != v1a {
			t.Fatalf("Derive(1) not reproducible at step %d", i)
		}
		if v1 == v2 {
			t.Fatalf("Derive(1) and Derive(2) collided at step %d", i)
		}
	}
	// Derive must not disturb the parent stream.
	a, b := New(9), New(9)
	_ = a.Derive(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Derive disturbed parent stream at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ≈ 0.5", mean)
	}
}

func TestBernoulliEndpointsAndRate(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.005 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(4)
	const n, k = 120000, 6
	var buckets [k]int
	for i := 0; i < n; i++ {
		v := r.Intn(k)
		if v < 0 || v >= k {
			t.Fatalf("Intn out of range: %d", v)
		}
		buckets[v]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-1.0/k) > 0.01 {
			t.Fatalf("bucket %d frequency %v, want ≈ %v", i, frac, 1.0/k)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈ 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("normal variance = %v, want ≈ 9", variance)
	}
}

func TestNormalClamped(t *testing.T) {
	r := New(6)
	for i := 0; i < 50000; i++ {
		x := r.NormalClamped(0.5, 0.2, 0.01, 0.99)
		if x < 0.01 || x > 0.99 {
			t.Fatalf("clamped normal out of range: %v", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d != %d", got, sum)
	}
}
