package randx

import (
	"math"
	"testing"
)

// TestBernoulliThresholdMatchesBernoulli is the load-bearing equivalence
// behind the flat sampling kernels: for every probability, a threshold
// comparison against one raw word must reproduce Bernoulli's decision AND
// its stream consumption exactly, so kernels that precompute thresholds
// stay bit-identical to the seed implementation.
func TestBernoulliThresholdMatchesBernoulli(t *testing.T) {
	probs := []float64{
		0, 1, -0.5, 1.5, // deterministic endpoints: no draw
		math.SmallestNonzeroFloat64,
		1e-300, 1e-18, 1e-9,
		0.1, 0.25, 0.3333333333333333, 0.5, 0.5000000000000001,
		0.75, 0.9, 0.999999, 1 - 1e-16,
		// Values whose p·2⁵³ is an exact integer (ceil boundary cases).
		0.5, 0.25, 0.125, 1.0 / (1 << 53),
	}
	for _, p := range probs {
		th := BernoulliThreshold(p)
		a, b := New(12345), New(12345)
		for i := 0; i < 20000; i++ {
			want := a.Bernoulli(p)
			got := b.BernoulliThresholded(th)
			if want != got {
				t.Fatalf("p=%v: decision diverged at draw %d: Bernoulli=%v thresholded=%v", p, i, want, got)
			}
			// Stream positions must stay in lockstep: the next raw words
			// agree only if both paths consumed the same count.
			if *a != *b {
				t.Fatalf("p=%v: stream positions diverged at draw %d", p, i)
			}
		}
	}
}

// TestBernoulliThresholdRandomProbs fuzzes the equivalence over random
// probabilities drawn from the generator itself.
func TestBernoulliThresholdRandomProbs(t *testing.T) {
	src := New(99)
	for trial := 0; trial < 200; trial++ {
		p := src.Float64()
		th := BernoulliThreshold(p)
		a, b := New(uint64(trial)*7+1), New(uint64(trial)*7+1)
		for i := 0; i < 500; i++ {
			if a.Bernoulli(p) != b.BernoulliThresholded(th) {
				t.Fatalf("p=%v: diverged at draw %d", p, i)
			}
		}
	}
}

// TestBernoulliThresholdSentinels pins the sentinel encoding the kernels
// branch on: deterministic probabilities map to the reserved values and
// every genuine probability stays strictly inside them.
func TestBernoulliThresholdSentinels(t *testing.T) {
	if BernoulliThreshold(0) != BernoulliNever || BernoulliThreshold(-1) != BernoulliNever {
		t.Fatal("p <= 0 must map to BernoulliNever")
	}
	if BernoulliThreshold(1) != BernoulliAlways || BernoulliThreshold(2) != BernoulliAlways {
		t.Fatal("p >= 1 must map to BernoulliAlways")
	}
	for _, p := range []float64{math.SmallestNonzeroFloat64, 1e-300, 0.5, 1 - 1e-16} {
		th := BernoulliThreshold(p)
		if th == BernoulliNever || th == BernoulliAlways {
			t.Fatalf("p=%v mapped to a sentinel threshold %d", p, th)
		}
		if th > 1<<53 {
			t.Fatalf("p=%v: threshold %d above 2^53", p, th)
		}
	}
}

// TestDeriveIntoMatchesDerive pins DeriveInto as an allocation-free alias
// of Derive: same id, same parent state, same child stream.
func TestDeriveIntoMatchesDerive(t *testing.T) {
	root := New(31)
	var dst RNG
	for id := uint64(0); id < 100; id++ {
		want := root.Derive(id)
		root.DeriveInto(id, &dst)
		for i := 0; i < 50; i++ {
			if want.Uint64() != dst.Uint64() {
				t.Fatalf("id=%d: DeriveInto diverged from Derive at step %d", id, i)
			}
		}
	}
}

// TestDeriveIntoDoesNotAllocate backs the flat kernels' zero-allocation
// budget at its source.
func TestDeriveIntoDoesNotAllocate(t *testing.T) {
	root := New(5)
	var dst RNG
	allocs := testing.AllocsPerRun(1000, func() {
		root.DeriveInto(7, &dst)
	})
	if allocs != 0 {
		t.Fatalf("DeriveInto allocates %v times per call, want 0", allocs)
	}
}
