package dataset

import (
	"math"
	"testing"
)

func TestSyntheticDefaults(t *testing.T) {
	d, err := Synthetic(SyntheticConfig{Seed: 1, NumL: 50, NumR: 80, NumEdges: 600})
	if err != nil {
		t.Fatal(err)
	}
	if d.G.NumL() != 50 || d.G.NumR() != 80 || d.G.NumEdges() != 600 {
		t.Fatalf("got %dx%d with %d edges", d.G.NumL(), d.G.NumR(), d.G.NumEdges())
	}
	st := d.G.ComputeStats()
	if st.MinWeight < 0.5 || st.MaxWeight > 5 {
		t.Fatalf("weights [%v, %v] outside default [0.5, 5]", st.MinWeight, st.MaxWeight)
	}
	if st.MinProb < 0.05 || st.MaxProb > 0.95 {
		t.Fatalf("probs [%v, %v] outside uniform default", st.MinProb, st.MaxProb)
	}
}

func TestSyntheticExactEdgeCountEvenWhenDense(t *testing.T) {
	// 95% density: rejection sampling alone would struggle; the
	// deterministic fill must top it up to the exact target.
	d, err := Synthetic(SyntheticConfig{Seed: 2, NumL: 20, NumR: 20, NumEdges: 380})
	if err != nil {
		t.Fatal(err)
	}
	if d.G.NumEdges() != 380 {
		t.Fatalf("got %d edges, want exactly 380", d.G.NumEdges())
	}
}

func TestSyntheticWeightDistributions(t *testing.T) {
	halves, err := Synthetic(SyntheticConfig{Seed: 3, NumL: 30, NumR: 30, NumEdges: 500, Weights: WeightHalfStep})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range halves.G.Edges() {
		if math.Mod(e.W*2, 1) != 0 {
			t.Fatalf("half-step weight %v not on the grid", e.W)
		}
	}
	normal, err := Synthetic(SyntheticConfig{
		Seed: 3, NumL: 30, NumR: 30, NumEdges: 500,
		Weights: WeightNormal, WeightMin: 10, WeightMax: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := normal.G.ComputeStats()
	if st.MinWeight < 10 || st.MaxWeight > 20 {
		t.Fatalf("normal weights [%v, %v] escape the clamp", st.MinWeight, st.MaxWeight)
	}
	if st.MeanWeight < 13 || st.MeanWeight > 17 {
		t.Fatalf("normal weight mean %v far from midpoint 15", st.MeanWeight)
	}
}

func TestSyntheticProbDistributions(t *testing.T) {
	fixed, err := Synthetic(SyntheticConfig{
		Seed: 4, NumL: 10, NumR: 10, NumEdges: 50,
		Probs: ProbFixed, ProbMean: 0.42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range fixed.G.Edges() {
		if e.P != 0.42 {
			t.Fatalf("fixed probability %v != 0.42", e.P)
		}
	}
	normal, err := Synthetic(SyntheticConfig{
		Seed: 4, NumL: 40, NumR: 40, NumEdges: 800,
		Probs: ProbNormal, ProbMean: 0.5, ProbStd: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := normal.G.ComputeStats()
	if st.MeanProb < 0.45 || st.MeanProb > 0.55 {
		t.Fatalf("normal prob mean %v, want ≈ 0.5", st.MeanProb)
	}
}

func TestSyntheticDegreeSkew(t *testing.T) {
	skewed, err := Synthetic(SyntheticConfig{Seed: 5, NumL: 200, NumR: 200, NumEdges: 2000, DegreeSkew: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Synthetic(SyntheticConfig{Seed: 5, NumL: 200, NumR: 200, NumEdges: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.G.ComputeStats().MaxDegreeL <= uniform.G.ComputeStats().MaxDegreeL {
		t.Fatalf("skewed max degree %d not above uniform %d",
			skewed.G.ComputeStats().MaxDegreeL, uniform.G.ComputeStats().MaxDegreeL)
	}
}

func TestSyntheticValidation(t *testing.T) {
	cases := []SyntheticConfig{
		{NumL: 0, NumR: 5, NumEdges: 1},
		{NumL: 5, NumR: 0, NumEdges: 1},
		{NumL: 2, NumR: 2, NumEdges: -1},
		{NumL: 2, NumR: 2, NumEdges: 5},
		{NumL: 2, NumR: 2, NumEdges: 1, WeightMin: 5, WeightMax: 1},
		{NumL: 2, NumR: 2, NumEdges: 1, Weights: "pareto"},
		{NumL: 2, NumR: 2, NumEdges: 1, Probs: "cauchy"},
		{NumL: 2, NumR: 2, NumEdges: 1, Probs: ProbFixed, ProbMean: 1.5},
	}
	for _, cfg := range cases {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("Synthetic(%+v) accepted invalid config", cfg)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := SyntheticConfig{Seed: 6, NumL: 20, NumR: 20, NumEdges: 100, DegreeSkew: 0.8}
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.G.NumEdges(); i++ {
		if a.G.Edge(uint32(i)) != b.G.Edge(uint32(i)) {
			t.Fatalf("same config produced different edge %d", i)
		}
	}
}
