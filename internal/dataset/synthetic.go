package dataset

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// WeightDist selects a weight distribution for Synthetic.
type WeightDist string

// Weight distributions.
const (
	// WeightUniform draws continuous weights uniformly from
	// [WeightMin, WeightMax) — no exact ties.
	WeightUniform WeightDist = "uniform"
	// WeightHalfStep draws rating-style weights on a half-point grid in
	// [WeightMin, WeightMax] — heavy exact ties, the regime that
	// stresses tie handling in S_MB and the OLS estimators.
	WeightHalfStep WeightDist = "halfstep"
	// WeightNormal draws Normal((min+max)/2, (max−min)/6) clamped into
	// [WeightMin, WeightMax].
	WeightNormal WeightDist = "normal"
)

// ProbDist selects a probability distribution for Synthetic.
type ProbDist string

// Probability distributions.
const (
	// ProbUniform draws uniformly from (0.05, 0.95).
	ProbUniform ProbDist = "uniform"
	// ProbNormal draws Normal(ProbMean, ProbStd) clamped into
	// (0.01, 0.99) — the paper's Protein preprocessing shape.
	ProbNormal ProbDist = "normal"
	// ProbFixed assigns every edge probability ProbMean.
	ProbFixed ProbDist = "fixed"
)

// SyntheticConfig parameterizes the generic generator.
type SyntheticConfig struct {
	Seed     uint64
	NumL     int
	NumR     int
	NumEdges int
	// DegreeSkew is the Zipf exponent for endpoint popularity on both
	// sides; 0 (or negative) means uniform endpoints.
	DegreeSkew float64
	// Weights selects the weight distribution (default WeightUniform)
	// over [WeightMin, WeightMax] (default [0.5, 5]).
	Weights              WeightDist
	WeightMin, WeightMax float64
	// Probs selects the probability distribution (default ProbUniform);
	// ProbMean/ProbStd parameterize ProbNormal and ProbFixed (defaults
	// 0.5 and 0.2).
	Probs    ProbDist
	ProbMean float64
	ProbStd  float64
}

func (c *SyntheticConfig) fillDefaults() {
	if c.Weights == "" {
		c.Weights = WeightUniform
	}
	if c.WeightMin == 0 && c.WeightMax == 0 {
		c.WeightMin, c.WeightMax = 0.5, 5
	}
	if c.Probs == "" {
		c.Probs = ProbUniform
	}
	if c.ProbMean == 0 {
		c.ProbMean = 0.5
	}
	if c.ProbStd == 0 {
		c.ProbStd = 0.2
	}
}

func (c *SyntheticConfig) validate() error {
	if c.NumL < 1 || c.NumR < 1 {
		return fmt.Errorf("dataset: synthetic needs NumL, NumR ≥ 1 (got %d×%d)", c.NumL, c.NumR)
	}
	if c.NumEdges < 0 {
		return fmt.Errorf("dataset: negative edge count %d", c.NumEdges)
	}
	if max := c.NumL * c.NumR; c.NumEdges > max {
		return fmt.Errorf("dataset: %d edges exceed the %d×%d complete bipartite capacity %d", c.NumEdges, c.NumL, c.NumR, max)
	}
	if c.WeightMin > c.WeightMax {
		return fmt.Errorf("dataset: WeightMin %v > WeightMax %v", c.WeightMin, c.WeightMax)
	}
	switch c.Weights {
	case WeightUniform, WeightHalfStep, WeightNormal:
	default:
		return fmt.Errorf("dataset: unknown weight distribution %q", c.Weights)
	}
	switch c.Probs {
	case ProbUniform, ProbNormal, ProbFixed:
	default:
		return fmt.Errorf("dataset: unknown probability distribution %q", c.Probs)
	}
	if c.Probs != ProbUniform && (c.ProbMean < 0 || c.ProbMean > 1) {
		return fmt.Errorf("dataset: ProbMean %v outside [0,1]", c.ProbMean)
	}
	return nil
}

// Synthetic generates a fully parameterized uncertain bipartite network —
// the knob-for-knob generator behind custom experiments (the four named
// datasets are curated presets of the same ingredients).
func Synthetic(cfg SyntheticConfig) (*Dataset, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed ^ 0x5e17)
	var zl, zr *randx.Zipf
	if cfg.DegreeSkew > 0 {
		zl = randx.NewZipf(cfg.NumL, cfg.DegreeSkew)
		zr = randx.NewZipf(cfg.NumR, cfg.DegreeSkew)
	}
	pick := func(z *randx.Zipf, n int) int {
		if z != nil {
			return z.Sample(rng)
		}
		return rng.Intn(n)
	}
	weight := func() float64 {
		switch cfg.Weights {
		case WeightHalfStep:
			w := math.Round(rng.UniformRange(cfg.WeightMin, cfg.WeightMax)*2) / 2
			if w < cfg.WeightMin {
				w = cfg.WeightMin
			}
			return w
		case WeightNormal:
			mid := (cfg.WeightMin + cfg.WeightMax) / 2
			sd := (cfg.WeightMax - cfg.WeightMin) / 6
			return rng.NormalClamped(mid, sd, cfg.WeightMin, cfg.WeightMax)
		default:
			return rng.UniformRange(cfg.WeightMin, cfg.WeightMax)
		}
	}
	prob := func() float64 {
		switch cfg.Probs {
		case ProbNormal:
			return rng.NormalClamped(cfg.ProbMean, cfg.ProbStd, 0.01, 0.99)
		case ProbFixed:
			return cfg.ProbMean
		default:
			return rng.UniformRange(0.05, 0.95)
		}
	}

	b := bigraph.NewBuilder(cfg.NumL, cfg.NumR)
	seen := make(map[uint64]bool, cfg.NumEdges)
	// Dense targets need a fallback beyond rejection sampling; bound the
	// attempts and fill the remainder deterministically.
	for attempts := 0; b.NumEdges() < cfg.NumEdges && attempts < 30*cfg.NumEdges+100; attempts++ {
		u := pick(zl, cfg.NumL)
		v := pick(zr, cfg.NumR)
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), weight(), prob())
	}
	for u := 0; u < cfg.NumL && b.NumEdges() < cfg.NumEdges; u++ {
		for v := 0; v < cfg.NumR && b.NumEdges() < cfg.NumEdges; v++ {
			key := uint64(u)<<32 | uint64(v)
			if seen[key] {
				continue
			}
			seen[key] = true
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), weight(), prob())
		}
	}
	return &Dataset{
		Name:        "synthetic",
		G:           b.Build(),
		WeightDesc:  string(cfg.Weights),
		ProbDesc:    string(cfg.Probs),
		Substitutes: "custom synthetic workload",
	}, nil
}
