package dataset

import (
	"math"
	"testing"
)

// tiny keeps generation fast in tests while exercising the same code.
var tiny = Config{Seed: 1, Scale: 0.05}

func TestByNameAndAll(t *testing.T) {
	for _, name := range Names {
		d, err := ByName(name, tiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, d.Name)
		}
		if d.G.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
	if _, err := ByName("nope", tiny); err == nil {
		t.Fatal("ByName accepted an unknown dataset")
	}
	all := All(tiny)
	if len(all) != 4 {
		t.Fatalf("All returned %d datasets, want 4", len(all))
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names {
		a, _ := ByName(name, tiny)
		b, _ := ByName(name, tiny)
		if a.G.NumEdges() != b.G.NumEdges() {
			t.Fatalf("%s: same seed produced different edge counts", name)
		}
		for i := 0; i < a.G.NumEdges(); i++ {
			if a.G.Edge(uint32(i)) != b.G.Edge(uint32(i)) {
				t.Fatalf("%s: same seed produced different edge %d", name, i)
			}
		}
		c, _ := ByName(name, Config{Seed: 2, Scale: tiny.Scale})
		if c.G.NumEdges() == a.G.NumEdges() {
			diff := false
			for i := 0; i < a.G.NumEdges(); i++ {
				if a.G.Edge(uint32(i)) != c.G.Edge(uint32(i)) {
					diff = true
					break
				}
			}
			if !diff {
				t.Fatalf("%s: different seeds produced identical graphs", name)
			}
		}
	}
}

func TestValidProbabilitiesAndWeights(t *testing.T) {
	for _, d := range All(tiny) {
		for _, e := range d.G.Edges() {
			if e.P < 0 || e.P > 1 || math.IsNaN(e.P) {
				t.Fatalf("%s: probability %v out of range", d.Name, e.P)
			}
			if e.W <= 0 || math.IsNaN(e.W) || math.IsInf(e.W, 0) {
				t.Fatalf("%s: weight %v not positive finite", d.Name, e.W)
			}
		}
	}
}

func TestABIDEShape(t *testing.T) {
	d := ABIDELike(Config{Seed: 3}) // full size
	if d.G.NumL() != 58 || d.G.NumR() != 58 {
		t.Fatalf("ABIDE is %dx%d, want 58x58", d.G.NumL(), d.G.NumR())
	}
	if d.G.NumEdges() != 58*58 {
		t.Fatalf("ABIDE has %d edges, want %d (complete bipartite)", d.G.NumEdges(), 58*58)
	}
}

func TestMovieLensShape(t *testing.T) {
	d := MovieLensLike(Config{Seed: 3, Scale: 0.2})
	if d.G.NumL() != 122 || d.G.NumR() != 1945 {
		t.Fatalf("scaled MovieLens is %dx%d, want 122x1945", d.G.NumL(), d.G.NumR())
	}
	target := 100836 / 5
	if d.G.NumEdges() < target/2 || d.G.NumEdges() > target*2 {
		t.Fatalf("MovieLens has %d edges, want within 2x of %d", d.G.NumEdges(), target)
	}
	// Weights are half-point ratings in [0.5, 5].
	for _, e := range d.G.Edges() {
		if e.W < 0.5 || e.W > 5 || math.Mod(e.W*2, 1) != 0 {
			t.Fatalf("MovieLens rating %v not a half-point in [0.5,5]", e.W)
		}
	}
	// Popularity skew: the busiest movie far exceeds the mean.
	st := d.G.ComputeStats()
	meanDeg := float64(st.NumEdges) / float64(st.NumR)
	if float64(st.MaxDegreeR) < 5*meanDeg {
		t.Fatalf("MovieLens max movie degree %d not skewed vs mean %.1f", st.MaxDegreeR, meanDeg)
	}
}

func TestJesterShape(t *testing.T) {
	d := JesterLike(Config{Seed: 3, Scale: 0.1}) // 1/100 of paper users
	if d.G.NumL() != 100 {
		t.Fatalf("Jester has %d jokes, want 100", d.G.NumL())
	}
	users := d.G.NumR()
	if users < 700 || users > 800 {
		t.Fatalf("Jester has %d users, want ≈ 734", users)
	}
	// Density ≈ 45–56%% of the 100 jokes per user.
	meanDeg := float64(d.G.NumEdges()) / float64(users)
	if meanDeg < 25 || meanDeg > 70 {
		t.Fatalf("Jester mean user degree %.1f outside dense regime", meanDeg)
	}
	// Weight ties: with quarter-point quantization over a bounded range
	// there must be far fewer distinct weights than edges.
	distinct := make(map[float64]bool)
	for _, e := range d.G.Edges() {
		distinct[e.W] = true
	}
	if len(distinct) > 100 {
		t.Fatalf("Jester has %d distinct weights; expected heavy ties", len(distinct))
	}
}

func TestProteinShape(t *testing.T) {
	d := ProteinLike(Config{Seed: 3, Scale: 0.2}) // 1/200 of paper vertices
	n := d.G.NumL()
	if n != d.G.NumR() {
		t.Fatalf("Protein partitions unequal: %d vs %d", n, d.G.NumR())
	}
	if n < 900 || n > 940 {
		t.Fatalf("Protein has %d vertices per side, want ≈ 934", n)
	}
	// Probabilities center near 0.5 (Normal(0.5, 0.2) clamped).
	s := d.G.ComputeStats()
	if s.MeanProb < 0.4 || s.MeanProb > 0.6 {
		t.Fatalf("Protein mean probability %v, want ≈ 0.5", s.MeanProb)
	}
	// Hub structure from the Zipf endpoints.
	meanDeg := float64(s.NumEdges) / float64(n)
	if float64(s.MaxDegreeL) < 3*meanDeg {
		t.Fatalf("Protein max degree %d not hubby vs mean %.1f", s.MaxDegreeL, meanDeg)
	}
}

func TestTable3RowsMatchGraphs(t *testing.T) {
	ds := All(tiny)
	rows := Table3(ds)
	if len(rows) != 4 {
		t.Fatalf("Table3 has %d rows, want 4", len(rows))
	}
	for i, r := range rows {
		if r.Name != ds[i].Name || r.Edges != ds[i].G.NumEdges() ||
			r.L != ds[i].G.NumL() || r.R != ds[i].G.NumR() {
			t.Fatalf("row %d = %+v does not match dataset %q", i, r, ds[i].Name)
		}
	}
}

func TestScaleZeroDefaults(t *testing.T) {
	d := ABIDELike(Config{Seed: 1, Scale: 0})
	if d.G.NumL() != 58 {
		t.Fatalf("Scale=0 should mean default size, got %d", d.G.NumL())
	}
}
