// Package dataset provides synthetic stand-ins for the four datasets of
// the paper's evaluation (Table III). The real datasets cannot be shipped
// — ABIDE is clinical neuro-imaging data, MovieLens and Jester are
// licensed rating collections, and the STRING protein network is tens of
// millions of edges — so each generator reproduces the properties the
// MPMB algorithms are actually sensitive to: bipartite shape, degree
// skew, weight distribution (including tie structure), and probability
// distribution. DESIGN.md §4 documents each substitution.
//
// All generators are deterministic in Config.Seed and accept a Scale
// factor so experiments can be sized to the machine at hand; Scale = 1
// reproduces the paper's vertex counts for the two small datasets and a
// laptop-sized fraction of the two large ones (the per-dataset default
// scale constants record the fraction).
package dataset

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// Config controls dataset generation.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed uint64
	// Scale multiplies the dataset's default dimensions. Scale <= 0 is
	// treated as 1 (the default size). Scale applies to vertex counts;
	// edge counts follow the dataset's structural model.
	Scale float64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// Dataset is a generated uncertain bipartite network plus its provenance
// for reporting (Table III).
type Dataset struct {
	Name        string
	G           *bigraph.Graph
	WeightDesc  string // what the edge weight models
	ProbDesc    string // what the edge probability models
	Substitutes string // the paper dataset this stands in for
}

// Names lists the four Table III datasets in paper order.
var Names = []string{"abide", "movielens", "jester", "protein"}

// ByName generates the named dataset.
func ByName(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "abide":
		return ABIDELike(cfg), nil
	case "movielens":
		return MovieLensLike(cfg), nil
	case "jester":
		return JesterLike(cfg), nil
	case "protein":
		return ProteinLike(cfg), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names)
	}
}

// All generates the four datasets in paper order.
func All(cfg Config) []*Dataset {
	out := make([]*Dataset, 0, len(Names))
	for _, n := range Names {
		d, err := ByName(n, cfg)
		if err != nil {
			panic(err) // unreachable: Names is the authoritative list
		}
		out = append(out, d)
	}
	return out
}

// ABIDELike mimics the ABIDE brain network: 58 regions of interest per
// hemisphere, near-complete connectivity between hemispheres (the paper's
// 58×58 with 3,364 = 58² edges), weights modelling physical distance
// between ROI centroids and probabilities modelling functional
// correlation, which decays with distance.
func ABIDELike(cfg Config) *Dataset {
	rng := randx.New(cfg.Seed ^ 0xab1de)
	n := int(math.Round(58 * cfg.scale()))
	if n < 2 {
		n = 2
	}
	// Random ROI centroids in each hemisphere; the right hemisphere is
	// offset along x so inter-hemisphere distances are realistic.
	type p3 struct{ x, y, z float64 }
	left := make([]p3, n)
	right := make([]p3, n)
	for i := 0; i < n; i++ {
		left[i] = p3{rng.UniformRange(0, 60), rng.UniformRange(0, 140), rng.UniformRange(0, 100)}
		right[i] = p3{rng.UniformRange(80, 140), rng.UniformRange(0, 140), rng.UniformRange(0, 100)}
	}
	b := bigraph.NewBuilder(n, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			dx := left[u].x - right[v].x
			dy := left[u].y - right[v].y
			dz := left[u].z - right[v].z
			dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
			// Correlation decays with distance, with per-pair noise.
			corr := math.Exp(-dist/120) + rng.Normal(0, 0.08)
			if corr < 0.02 {
				corr = 0.02
			}
			if corr > 0.98 {
				corr = 0.98
			}
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), dist, corr)
		}
	}
	return &Dataset{
		Name:        "abide",
		G:           b.Build(),
		WeightDesc:  "physical distance",
		ProbDesc:    "correlation",
		Substitutes: "ABIDE brain network (58×58, 3,364 edges)",
	}
}

// MovieLensLike mimics the MovieLens-100K rating graph: 610 users ×
// 9,724 movies with ≈100,836 ratings, Zipf-skewed movie popularity,
// half-point ratings in [0.5, 5] as weights, and reliability — one minus
// the relative deviation of the rating from the movie's mean rating — as
// probability.
func MovieLensLike(cfg Config) *Dataset {
	rng := randx.New(cfg.Seed ^ 0x0710e5)
	s := cfg.scale()
	numUsers := atLeast(int(math.Round(610*s)), 2)
	numMovies := atLeast(int(math.Round(9724*s)), 2)
	targetEdges := int(math.Round(100836 * s))

	zipf := randx.NewZipf(numMovies, 1.05)
	type rating struct {
		u, v int
		r    float64
	}
	var ratings []rating
	seen := make(map[uint64]bool, targetEdges)
	// Per-user activity is heavy-tailed: a Pareto-ish draw normalized so
	// the edge total lands near the target.
	degrees := make([]int, numUsers)
	total := 0
	for u := range degrees {
		d := int(8 * math.Pow(1/(1-0.999*rng.Float64()), 0.55))
		if d > numMovies/2 {
			d = numMovies / 2
		}
		if d < 1 {
			d = 1
		}
		degrees[u] = d
		total += d
	}
	adj := float64(targetEdges) / float64(total)
	for u := range degrees {
		d := int(float64(degrees[u])*adj + 0.5)
		if d < 1 {
			d = 1
		}
		for k, attempts := 0, 0; k < d && attempts < 8*d; attempts++ {
			v := zipf.Sample(rng)
			key := uint64(u)<<32 | uint64(v)
			if seen[key] {
				continue // popular movie already rated; redraw
			}
			seen[key] = true
			k++
			// Ratings cluster around 3.5–4 in half-point steps.
			r := math.Round(rng.NormalClamped(3.6, 0.9, 0.5, 5)*2) / 2
			ratings = append(ratings, rating{u: u, v: v, r: r})
		}
	}
	// Movie mean ratings for the reliability probabilities.
	sum := make([]float64, numMovies)
	cnt := make([]int, numMovies)
	for _, rt := range ratings {
		sum[rt.v] += rt.r
		cnt[rt.v]++
	}
	b := bigraph.NewBuilder(numUsers, numMovies)
	for _, rt := range ratings {
		mean := sum[rt.v] / float64(cnt[rt.v])
		rel := 1 - math.Abs(rt.r-mean)/4.5
		if rel < 0.05 {
			rel = 0.05
		}
		b.MustAddEdge(bigraph.VertexID(rt.u), bigraph.VertexID(rt.v), rt.r, rel)
	}
	return &Dataset{
		Name:        "movielens",
		G:           b.Build(),
		WeightDesc:  "rating",
		ProbDesc:    "reliability",
		Substitutes: "MovieLens 100K (610×9,724, 100,836 edges)",
	}
}

// jesterDefaultScale sizes the Jester analogue to a laptop: the paper's
// Jester is 100×73,421 with 4.1M edges; the default here keeps the 100
// jokes and 1/10 of the users (≈410k edges). Pass Scale > defaults to
// approach paper size.
const jesterDefaultScale = 0.1

// JesterLike mimics the Jester joke-rating graph: 100 jokes on the left,
// a large user population on the right, dense per-user rating activity
// (the original averages ≈56 of 100 jokes rated per user), continuous
// ratings in [-10, 10] quantized to quarter points (producing the heavy
// weight ties Fig. 10(c) remarks on), and reliability probabilities.
func JesterLike(cfg Config) *Dataset {
	rng := randx.New(cfg.Seed ^ 0x1e57e4)
	s := cfg.scale() * jesterDefaultScale
	numJokes := 100
	numUsers := atLeast(int(math.Round(73421*s)), 2)

	// Joke "funniness" biases both which jokes get rated and how.
	funny := make([]float64, numJokes)
	for j := range funny {
		funny[j] = rng.Normal(0, 3)
	}
	b := bigraph.NewBuilder(numJokes, numUsers)
	for u := 0; u < numUsers; u++ {
		// Each user rates each joke with probability ≈ 0.56, slightly
		// higher for funnier jokes.
		for j := 0; j < numJokes; j++ {
			pRate := 0.45 + 0.02*funny[j]
			if pRate < 0.1 {
				pRate = 0.1
			}
			if pRate > 0.9 {
				pRate = 0.9
			}
			if !rng.Bernoulli(pRate) {
				continue
			}
			raw := rng.NormalClamped(funny[j], 4, -10, 10)
			// Shift to positive weights and quantize to quarter points:
			// many users give identical scores to the same joke.
			w := math.Round((raw+10.5)*4) / 4 / 2
			rel := 1 - math.Abs(raw-funny[j])/25
			if rel < 0.05 {
				rel = 0.05
			}
			b.MustAddEdge(bigraph.VertexID(j), bigraph.VertexID(u), w, rel)
		}
	}
	return &Dataset{
		Name:        "jester",
		G:           b.Build(),
		WeightDesc:  "rating",
		ProbDesc:    "reliability",
		Substitutes: "Jester (100×73,421, 4.1M edges; default generated at 1/10 users)",
	}
}

// proteinDefaultScale sizes the Protein analogue: the paper's STRING
// slice is 186,773×186,772 with 39.5M edges; the default here is 1/40 of
// the vertices with matching average degree (≈1M edges).
const proteinDefaultScale = 0.025

// ProteinLike mimics the preprocessed STRING protein-interaction network:
// the original deterministic non-bipartite graph is split into a
// bipartition (the paper splits by odd/even vertex id), weights are
// interaction-strength scores, and — exactly as the paper does, since
// STRING has no probabilities — edge probabilities are drawn from
// Normal(0.5, 0.2), clamped into (0, 1).
func ProteinLike(cfg Config) *Dataset {
	rng := randx.New(cfg.Seed ^ 0x9607e19)
	s := cfg.scale() * proteinDefaultScale
	n := atLeast(int(math.Round(186773*s)), 4)
	// Average left-vertex degree ≈ 211 in the original; keep it, capped
	// well below completeness.
	targetEdges := n * 211
	if max := n * n / 2; targetEdges > max {
		targetEdges = max
	}

	// Power-law endpoint selection models the hub structure of protein
	// networks.
	zl := randx.NewZipf(n, 0.8)
	zr := randx.NewZipf(n, 0.8)
	b := bigraph.NewBuilder(n, n)
	seen := make(map[uint64]bool, targetEdges)
	attempts := 0
	for b.NumEdges() < targetEdges && attempts < 20*targetEdges {
		attempts++
		u := zl.Sample(rng)
		v := zr.Sample(rng)
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		// STRING combined scores live in 150..1000; scale to 0.15..1.
		w := math.Round(rng.UniformRange(150, 1000)) / 1000
		p := rng.NormalClamped(0.5, 0.2, 0.01, 0.99)
		b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, p)
	}
	return &Dataset{
		Name:        "protein",
		G:           b.Build(),
		WeightDesc:  "interaction",
		ProbDesc:    "Normal(0.5,0.2)",
		Substitutes: "STRING protein network (186,773×186,772, 39.5M edges; default generated at 1/40 vertices)",
	}
}

func atLeast(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// TableRow is one line of the Table III reproduction.
type TableRow struct {
	Name        string
	Edges       int
	L, R        int
	Weight      string
	Probability string
}

// Table3 summarizes datasets in the layout of the paper's Table III.
func Table3(ds []*Dataset) []TableRow {
	rows := make([]TableRow, 0, len(ds))
	for _, d := range ds {
		rows = append(rows, TableRow{
			Name:        d.Name,
			Edges:       d.G.NumEdges(),
			L:           d.G.NumL(),
			R:           d.G.NumR(),
			Weight:      d.WeightDesc,
			Probability: d.ProbDesc,
		})
	}
	return rows
}
