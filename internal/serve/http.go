package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// tenantHeader names the submitting tenant; absent means "default".
const tenantHeader = "X-Tenant"

// apiError is the JSON error envelope every non-2xx answer carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 — clients must not busy-loop on fractional
// hints.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// routes builds the daemon's HTTP API:
//
//	POST   /v1/jobs              submit (202 + id; 429 when saturated)
//	GET    /v1/jobs              list job statuses, newest first
//	GET    /v1/jobs/{id}         one job's status (live metrics included)
//	GET    /v1/jobs/{id}/events  NDJSON event stream (?from=seq)
//	GET    /v1/jobs/{id}/result  finished result document
//	POST   /v1/jobs/{id}/cancel  request cancellation
//	GET    /healthz              liveness (always 200 while serving)
//	GET    /readyz               readiness (503 while draining)
//	GET    /metrics              Prometheus text exposition
//
// With Config.Dist the coordinator's /dist/v1 lease endpoints mount on
// the same mux, so one listener serves both tenants and workers.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	if s.coord != nil {
		s.coord.Register(mux)
	}
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /metrics", s.metricsHandler())
	return mux
}

// handleSubmit is the admission path: drain gate, spec validation,
// tenant quota charge, bounded queue. Saturation answers 429 with a
// Retry-After hint and leaves no trace — memory use is bounded by
// QueueDepth no matter how fast clients submit.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	tenant := r.Header.Get(tenantHeader)
	if tenant == "" {
		tenant = "default"
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	spec = spec.normalize()
	if err := s.validateSpec(spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}

	now := time.Now()
	if err := s.quotas.admit(tenant, spec.cost(), now); err != nil {
		s.stats.rejectedQuota.Add(1)
		var qe *quotaError
		if errors.As(err, &qe) {
			w.Header().Set("Retry-After", retryAfterSeconds(qe.retryAfter))
		}
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}

	id, err := newJobID()
	if err != nil {
		s.quotas.refund(tenant, spec.cost(), now)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	job := newJob(id, tenant, spec, now)
	if err := s.store.saveManifest(job.manifest()); err != nil {
		s.quotas.refund(tenant, spec.cost(), now)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	s.mu.Lock()
	s.jobs[id] = job
	s.mu.Unlock()

	if !s.sched.enqueue(job) {
		// Queue full (or drain raced the gate): undo the admission
		// completely — quota, manifest, registry — so a rejected burst
		// leaves no residue.
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.store.removeManifest(id)
		s.quotas.refund(tenant, spec.cost(), now)
		s.stats.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "admission queue full (%d jobs); retry later", s.cfg.QueueDepth)
		return
	}
	s.stats.submitted.Add(1)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": string(JobQueued)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.snapshotJobs()
	docs := make([]statusDoc, 0, len(jobs))
	for _, j := range jobs {
		docs = append(docs, j.status(nil))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status(j.liveMetrics()))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, "job already %s", j.State())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "state": "cancelling"})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	data, err := s.store.loadResult(j.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading result: %v", err)
		return
	}
	if data == nil {
		writeError(w, http.StatusNotFound, "job is %s: no result yet", j.State())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleEvents streams the job's telemetry events as NDJSON, one
// sequenced record per line, from ?from=seq (default 0) until the job
// finishes or the client disconnects. Events that aged out of the ring
// are skipped — the sequence numbers expose the gap.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	from := int64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from=%q", v)
			return
		}
		from = n
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for {
		events, wake, closed := j.events.since(from)
		for _, rec := range events {
			if err := enc.Encode(rec); err != nil {
				return
			}
			from = rec.Seq + 1
		}
		if flusher != nil {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
