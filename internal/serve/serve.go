// Package serve is the fault-tolerant multi-tenant MPMB search daemon
// behind cmd/mpmb-serve: a long-lived HTTP surface over the engine's
// Search/SearchContext front door, built so that heavy concurrent
// traffic degrades predictably instead of catastrophically.
//
// The robustness contract, end to end:
//
//   - Admission control. Submissions pass a per-tenant concurrency cap
//     and a token-bucket trial budget, then a bounded FIFO queue. A full
//     queue or an exhausted budget answers 429 with a Retry-After hint —
//     the daemon never buffers unbounded work in memory.
//   - Isolation. Each job runs with its own Observer, its own event ring
//     and journal, and a panic shield: one poisoned job fails alone.
//     Per-job deadlines and stall watchdogs reuse the engine's
//     Options.Deadline / Options.StallTimeout machinery, so a stuck job
//     surfaces a typed error instead of pinning a worker forever.
//   - Durability. Running jobs checkpoint periodically through the
//     retrying CheckpointStore. SIGTERM stops admission (readiness flips
//     to not-ready), drains in-flight jobs up to a grace period,
//     checkpoints whatever is still running, and persists every job's
//     manifest. A restarted daemon re-admits persisted jobs and resumes
//     them from their checkpoints — the finished Result is bit-identical
//     to an uninterrupted run, by the engine's (Seed, trial index)
//     stream-derivation guarantee.
//   - Reuse. Graphs and Searchers are cached by graph fingerprint
//     (bigraph checksum), and identical preparing phases are
//     single-flighted inside the Searcher, so repeated queries on the
//     same graph skip the preparing phase entirely.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/dist"
)

// Config sizes the daemon. The zero value is not usable: construct via
// New, which applies the documented defaults to zero fields.
type Config struct {
	// GraphRoot is the directory job graph names resolve under. Names
	// must be local (no absolute paths, no ".." escapes).
	GraphRoot string
	// StateDir holds job manifests, checkpoints, results and event
	// journals; it is created if missing. Everything a restart needs to
	// resume lives here.
	StateDir string

	// QueueDepth bounds the admission queue across all tenants
	// (default 64). Submissions beyond it are rejected with 429.
	QueueDepth int
	// Workers is the number of jobs run concurrently (default 2).
	Workers int

	// TenantJobs caps one tenant's active (queued + running) jobs
	// (default 4). TenantTrialRate and TenantTrialBurst shape the
	// per-tenant token bucket: admission charges Trials + PrepTrials
	// tokens, the bucket refills at TenantTrialRate tokens/second up to
	// TenantTrialBurst (defaults 1e6 and 2e7).
	TenantJobs       int
	TenantTrialRate  float64
	TenantTrialBurst float64

	// MaxTrials rejects single jobs whose Trials + PrepTrials exceed it
	// (0 = no cap) — a fat-finger guard distinct from the rate limiter.
	MaxTrials int

	// CheckpointEvery is the periodic checkpoint interval for resumable
	// jobs (default 30s; negative disables periodic checkpointing —
	// drain still checkpoints).
	CheckpointEvery time.Duration
	// DrainGrace is how long Drain lets in-flight jobs finish naturally
	// before checkpoint-and-suspending them (default 10s).
	DrainGrace time.Duration

	// JournalEvents persists each job's telemetry event stream as a
	// JSONL journal under StateDir/events (replayable with
	// `mpmb-bench journal`).
	JournalEvents bool

	// GraphCacheSize bounds the fingerprint-keyed graph/Searcher cache
	// (default 16 graphs; least recently used evicted first).
	GraphCacheSize int

	// Dist enables the distributed fan-out control plane: the daemon
	// mounts the /dist/v1 coordinator endpoints next to its job API and
	// hands eligible jobs' sampling trials (os/ols/ols-kl without
	// adaptive options) to the worker fleet instead of the in-process
	// pool. Results stay bit-identical to local runs — every trial's
	// stream derives from (seed, trial index) — but an eligible job
	// makes no progress until at least one worker joins
	// (mpmb-serve -worker -join, or mpmb-search -join).
	Dist bool

	// DistFallback arms the degraded-mode escape hatch for distributed
	// jobs: when the worker fleet stays silent that long, the job's
	// remaining spans run on an in-process fallback worker through the
	// same lease book, the Result stays bit-identical, and the dist→local
	// transition is recorded in Result.Adaptive. Zero keeps the pure
	// control-plane behavior (no progress without workers).
	DistFallback time.Duration

	// RetainTTL evicts terminal jobs (done/failed/cancelled) — manifest,
	// result, event journal, leftover checkpoint — once they have been
	// finished that long (0 = keep forever). RetainMax additionally caps
	// how many terminal jobs are retained, evicting oldest-finished first
	// (0 = unlimited). Queued, running and suspended jobs are never
	// touched: the daemon still owes that work.
	RetainTTL time.Duration
	RetainMax int
	// RetainSweep is the retention sweep cadence (default 1m when either
	// retention knob is set).
	RetainSweep time.Duration
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.TenantJobs == 0 {
		c.TenantJobs = 4
	}
	if c.TenantTrialRate == 0 {
		c.TenantTrialRate = 1e6
	}
	if c.TenantTrialBurst == 0 {
		c.TenantTrialBurst = 2e7
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.GraphCacheSize == 0 {
		c.GraphCacheSize = 16
	}
	if c.RetainSweep == 0 {
		c.RetainSweep = time.Minute
	}
	return c
}

// Server is one daemon instance. Construct with New, mount Handler on a
// listener, and call Drain (then Close) to shut down.
type Server struct {
	cfg    Config
	store  *stateStore
	graphs *graphCache
	quotas *quotaBook
	sched  *scheduler
	stats  *serveStats
	coord  *dist.Coordinator // non-nil when Config.Dist is set

	mu   sync.Mutex
	jobs map[string]*Job

	draining  chan struct{} // closed when admission stops
	drainOnce sync.Once
	retainWG  sync.WaitGroup

	handler http.Handler
}

// New builds a Server over cfg: creates the state layout, recovers
// persisted jobs (resuming interrupted ones from their checkpoints), and
// starts the scheduler workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("serve: Config.StateDir is required")
	}
	if cfg.GraphRoot == "" {
		cfg.GraphRoot = "."
	}
	store, err := newStateStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		graphs:   newGraphCache(cfg.GraphRoot, cfg.GraphCacheSize),
		quotas:   newQuotaBook(cfg.TenantJobs, cfg.TenantTrialRate, cfg.TenantTrialBurst),
		stats:    &serveStats{},
		jobs:     make(map[string]*Job),
		draining: make(chan struct{}),
	}
	if cfg.Dist {
		s.coord = dist.NewCoordinator()
		// Distributed jobs journal their lease book under the state dir,
		// so a daemon killed mid-fan-out replays the merged prefix on
		// restart instead of recomputing it.
		s.coord.Journal = &dist.Journal{Dir: filepath.Join(cfg.StateDir, "dist")}
	}
	recovered, err := s.recover()
	if err != nil {
		return nil, err
	}
	// The queue must hold every recovered job on top of its configured
	// depth: recovery re-admits work the previous process had already
	// accepted, and accepted work is never shed.
	s.sched = newScheduler(s, cfg.Workers, cfg.QueueDepth)
	for _, job := range recovered {
		s.sched.enqueueRecovered(job)
	}
	s.sched.start()
	if cfg.RetainTTL > 0 || cfg.RetainMax > 0 {
		s.retainWG.Add(1)
		go s.retentionLoop()
	}
	s.handler = s.routes()
	return s, nil
}

// Handler returns the daemon's HTTP API (see routes in http.go).
func (s *Server) Handler() http.Handler { return s.handler }

// Draining reports whether admission has stopped (readiness flipped).
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain shuts the daemon down gracefully: admission stops immediately
// (submissions answer 503, /readyz flips to not-ready), in-flight jobs
// get up to DrainGrace to finish naturally, and whatever still runs is
// checkpointed and suspended. Queued jobs stay persisted as queued. The
// ctx bounds the total wait for runners to unwind; Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.draining) })
	err := s.sched.drain(ctx, s.cfg.DrainGrace)
	s.retainWG.Wait() // the sweeper exits on the draining close above
	return err
}

// DrainBudget is the wall-clock bound a caller should allow a Drain
// context: the grace period plus the checkpoint-suspension margin.
func (s *Server) DrainBudget() time.Duration {
	return s.cfg.DrainGrace + 35*time.Second
}

// Close is Drain with a generous bound, for defer-style teardown.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainGrace+30*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// recover re-admits persisted jobs after a restart. Interrupted jobs
// (running or suspended at the previous shutdown) and never-started
// queued jobs return to the queue; their runners pick up any checkpoint
// on disk and finish the runs bit-identically. Terminal jobs are loaded
// for status/result queries only.
func (s *Server) recover() ([]*Job, error) {
	manifests, err := s.store.loadManifests()
	if err != nil {
		return nil, err
	}
	sort.Slice(manifests, func(i, j int) bool { return manifests[i].Submitted.Before(manifests[j].Submitted) })
	var requeue []*Job
	for _, m := range manifests {
		job := jobFromManifest(m)
		switch m.State {
		case JobQueued, JobRunning, JobSuspended:
			job.setState(JobQueued, "")
			// Re-admitted work re-occupies its tenant's concurrency slot;
			// the trial budget was spent at original admission and is not
			// charged again.
			s.quotas.recoverActive(job.Tenant)
			if err := s.store.saveManifest(job.manifest()); err != nil {
				return nil, err
			}
			requeue = append(requeue, job)
			s.stats.recovered.Add(1)
		}
		s.mu.Lock()
		s.jobs[job.ID] = job
		s.mu.Unlock()
	}
	return requeue, nil
}

// job looks a job up by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// snapshotJobs returns all jobs, newest submission first.
func (s *Server) snapshotJobs() []*Job {
	s.mu.Lock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Submitted.Equal(b.Submitted) {
			return a.Submitted.After(b.Submitted)
		}
		return a.ID < b.ID
	})
	return out
}

// newJobID returns a 16-hex-digit random job id.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: generating job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// resolveGraph validates a submitted graph name against GraphRoot:
// local, clean, no escapes.
func (s *Server) resolveGraph(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("graph name is required")
	}
	if filepath.IsAbs(name) || !filepath.IsLocal(name) {
		return "", fmt.Errorf("graph name %q must be a relative path inside the graph root", name)
	}
	path := filepath.Join(s.cfg.GraphRoot, name)
	if _, err := os.Stat(path); err != nil {
		return "", fmt.Errorf("graph %q: %w", name, err)
	}
	return path, nil
}
