package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fetchMetrics returns the daemon's /metrics exposition.
func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// statusCode does a raw status GET without the 200 assertion jobStatus
// bakes in.
func statusCode(t *testing.T, base, id string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// sweepUntilGone sweeps with the given clock until the job answers 404.
// The retry absorbs the tiny window where a job is already terminal but
// its runner has not yet closed the done channel — the sweep rightly
// refuses to evict mid-finalize.
func sweepUntilGone(t *testing.T, srv *Server, base, id string, now time.Time) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.sweepRetention(now)
		if statusCode(t, base, id) == http.StatusNotFound {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never evicted", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRetentionEvictsOldestTerminal drives the sweep directly: with
// RetainMax 1, two of three finished jobs — the two oldest — must be
// evicted from memory and disk, answering 404 afterwards; a later
// TTL-aged sweep must take the survivor too. The eviction counter tracks
// every removal.
func TestRetentionEvictsOldestTerminal(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	// RetainSweep an hour out: the background loop stays quiet and the
	// test owns the sweep clock.
	srv, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), CheckpointEvery: -1,
		RetainTTL: time.Hour, RetainMax: 1, RetainSweep: time.Hour,
	})

	var ids []string
	for i := 0; i < 3; i++ {
		id, _ := submitJob(t, hs.URL, "", map[string]any{
			"graph": "fig1.graph", "method": "os", "trials": 2000, "seed": 7 + i,
		})
		if id == "" {
			t.Fatal("submission rejected")
		}
		if doc := waitState(t, hs.URL, id, JobDone, JobFailed); doc.State != JobDone {
			t.Fatalf("job %d failed: %s", i, doc.Error)
		}
		ids = append(ids, id)
		time.Sleep(5 * time.Millisecond) // distinct finish stamps
	}

	for _, id := range ids[:2] {
		sweepUntilGone(t, srv, hs.URL, id, time.Now())
		if resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result"); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("evicted result %s answers %d, want 404", id, resp.StatusCode)
			}
		}
	}
	if code := statusCode(t, hs.URL, ids[2]); code != http.StatusOK {
		t.Fatalf("newest job evicted (status %d); RetainMax must keep the most recent", code)
	}
	if m := fetchMetrics(t, hs.URL); !strings.Contains(m, "mpmb_serve_jobs_evicted_total 2") {
		t.Fatalf("eviction counter not at 2:\n%s", m)
	}

	// TTL pass: from two hours in the future even the survivor is stale.
	sweepUntilGone(t, srv, hs.URL, ids[2], time.Now().Add(2*time.Hour))
	if m := fetchMetrics(t, hs.URL); !strings.Contains(m, "mpmb_serve_jobs_evicted_total 3") {
		t.Fatalf("eviction counter not at 3:\n%s", m)
	}
}

// TestRetentionSparesLiveJobs: queued/running/suspended jobs are never
// retention candidates, no matter how old — only terminal states age
// out. A cancelled (terminal) job then becomes evictable.
func TestRetentionSparesLiveJobs(t *testing.T) {
	graphs := t.TempDir()
	buildMeshGraph(t, graphs, "mesh.graph")
	srv, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), CheckpointEvery: -1,
		RetainTTL: time.Millisecond, RetainSweep: time.Hour,
	})

	id, _ := submitJob(t, hs.URL, "", map[string]any{
		"graph": "mesh.graph", "method": "os", "trials": 15_000_000, "seed": 7,
	})
	if id == "" {
		t.Fatal("submission rejected")
	}
	waitState(t, hs.URL, id, JobRunning)

	// A sweep from far in the future: the running job must survive.
	srv.sweepRetention(time.Now().Add(24 * time.Hour))
	if code := statusCode(t, hs.URL, id); code != http.StatusOK {
		t.Fatalf("running job evicted (status %d)", code)
	}

	resp, err := http.Post(hs.URL+"/v1/jobs/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, hs.URL, id, JobCancelled)

	// Now terminal: the same sweep takes it.
	sweepUntilGone(t, srv, hs.URL, id, time.Now().Add(24*time.Hour))
}
