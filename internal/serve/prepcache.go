package serve

import (
	"sync"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// graphEntry is one cached graph with its query-serving Searcher. ready
// closes when the load finishes; afterwards the remaining fields are
// immutable. Jobs running against an entry hold it directly, so LRU
// eviction only drops the cache's reference — in-flight work is safe.
type graphEntry struct {
	ready    chan struct{}
	path     string
	g        *mpmb.Graph
	searcher *mpmb.Searcher
	fp       uint32 // bigraph checksum — the graph fingerprint
	err      error
}

// graphCache loads graphs on demand and shares one Searcher per distinct
// graph CONTENT: entries are keyed by path for lookup, but once loaded
// they are deduplicated by fingerprint, so two graph names with
// identical bytes share a Searcher — and through it the single-flighted
// prep-candidate cache. Loads are single-flighted per path; capacity is
// bounded with least-recently-used eviction.
type graphCache struct {
	root string
	size int

	mu     sync.Mutex
	byPath map[string]*graphEntry
	byFP   map[uint32]*graphEntry
	order  []string // LRU order, oldest first
}

func newGraphCache(root string, size int) *graphCache {
	return &graphCache{
		root:   root,
		size:   size,
		byPath: make(map[string]*graphEntry),
		byFP:   make(map[uint32]*graphEntry),
	}
}

// get returns the entry for path, loading it if needed. Concurrent
// callers for one path share a single load.
func (c *graphCache) get(path string) (*graphEntry, error) {
	c.mu.Lock()
	e, ok := c.byPath[path]
	if ok {
		c.touch(path)
		c.mu.Unlock()
		<-e.ready
		return e, e.err
	}
	e = &graphEntry{ready: make(chan struct{}), path: path}
	c.byPath[path] = e
	c.touch(path)
	c.mu.Unlock()

	g, err := mpmb.LoadGraph(path)
	c.mu.Lock()
	if err != nil {
		e.err = err
		// Failed loads must not poison the path: evict so a later call
		// retries (a fixed file, a transient read error).
		if c.byPath[path] == e {
			c.dropLocked(path)
		}
	} else {
		fp := g.Checksum()
		if twin, ok := c.byFP[fp]; ok && twin != e {
			// Same bytes under another name: share its Searcher so the
			// prep-candidate cache is shared too.
			e.g, e.searcher, e.fp = twin.g, twin.searcher, fp
		} else {
			e.g, e.searcher, e.fp = g, mpmb.NewSearcher(g), fp
			c.byFP[fp] = e
		}
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return e, e.err
}

// touch moves path to the most-recently-used end.
func (c *graphCache) touch(path string) {
	for i, p := range c.order {
		if p == path {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, path)
}

func (c *graphCache) dropLocked(path string) {
	e := c.byPath[path]
	delete(c.byPath, path)
	if e != nil && c.byFP[e.fp] == e {
		delete(c.byFP, e.fp)
	}
	for i, p := range c.order {
		if p == path {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// evictLocked drops least-recently-used entries beyond capacity.
func (c *graphCache) evictLocked() {
	for len(c.byPath) > c.size && len(c.order) > 0 {
		c.dropLocked(c.order[0])
	}
}
