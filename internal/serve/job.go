package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	// JobQueued: admitted, waiting for a worker slot.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing trials.
	JobRunning JobState = "running"
	// JobDone: finished; the result is available.
	JobDone JobState = "done"
	// JobFailed: the run errored (stall, panic, bad graph); Error says why.
	JobFailed JobState = "failed"
	// JobCancelled: the client cancelled; a partial result may exist.
	JobCancelled JobState = "cancelled"
	// JobSuspended: checkpointed during drain; a restarted daemon
	// resumes it from the checkpoint.
	JobSuspended JobState = "suspended"
)

// terminal reports whether the state frees the job's quota slot.
func (st JobState) terminal() bool {
	switch st {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// JobSpec is the client-submitted search request. It mirrors the public
// mpmb.Options fields that make sense over the wire; durations travel
// as milliseconds so specs stay JSON-friendly and restart-stable.
type JobSpec struct {
	// Graph names the input graph, relative to the daemon's graph root.
	Graph string `json:"graph"`

	Method     string  `json:"method,omitempty"`
	Trials     int     `json:"trials,omitempty"`
	PrepTrials int     `json:"prep_trials,omitempty"`
	Seed       uint64  `json:"seed"`
	Mu         float64 `json:"mu,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	// TopK sizes the reported estimate list (default 5).
	TopK int `json:"top_k,omitempty"`

	AuditEvery     int     `json:"audit_every,omitempty"`
	MaxEscalations int     `json:"max_escalations,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`

	// DeadlineMS is the per-attempt wall-clock budget, mapped onto
	// Options.Deadline at run start; the run then stops at the first
	// trial boundary past it with an honest partial result.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// StallTimeoutMS arms the engine's stall watchdog
	// (Options.StallTimeout): a run making no progress that long fails
	// with a typed stall error instead of pinning a worker.
	StallTimeoutMS int64 `json:"stall_timeout_ms,omitempty"`

	// Query variant fields map onto Options.Query. At most one anchor may
	// be set, anchors and communities are mutually exclusive, and
	// adaptive prep requires an OLS-family method — the engine's
	// validation enforces all of it, and handleSubmit surfaces the typed
	// errors as 400s.
	AnchorL       *uint32         `json:"anchor_l,omitempty"`
	AnchorR       *uint32         `json:"anchor_r,omitempty"`
	AnchorEdge    *edgeAnchorSpec `json:"anchor_edge,omitempty"`
	CommunitiesL  []int           `json:"communities_l,omitempty"`
	CommunitiesR  []int           `json:"communities_r,omitempty"`
	CommunityTopK int             `json:"community_top_k,omitempty"`
	AdaptivePrep  bool            `json:"adaptive_prep,omitempty"`
}

// edgeAnchorSpec is the wire form of an edge anchor.
type edgeAnchorSpec struct {
	U uint32 `json:"u"`
	V uint32 `json:"v"`
}

// query builds the Options.Query for the spec's variant fields, or nil
// for a plain global search.
func (sp JobSpec) query() *mpmb.Query {
	hasCommunity := len(sp.CommunitiesL) > 0 || len(sp.CommunitiesR) > 0 || sp.CommunityTopK != 0
	if sp.AnchorL == nil && sp.AnchorR == nil && sp.AnchorEdge == nil &&
		!hasCommunity && !sp.AdaptivePrep {
		return nil
	}
	q := &mpmb.Query{AdaptivePrep: sp.AdaptivePrep}
	if sp.AnchorL != nil {
		v := mpmb.VertexID(*sp.AnchorL)
		q.AnchorL = &v
	}
	if sp.AnchorR != nil {
		v := mpmb.VertexID(*sp.AnchorR)
		q.AnchorR = &v
	}
	if sp.AnchorEdge != nil {
		q.AnchorEdge = &mpmb.EdgeAnchor{U: mpmb.VertexID(sp.AnchorEdge.U), V: mpmb.VertexID(sp.AnchorEdge.V)}
	}
	if hasCommunity {
		q.Community = &mpmb.Communities{L: sp.CommunitiesL, R: sp.CommunitiesR, TopK: sp.CommunityTopK}
	}
	return q
}

// normalize fills paper defaults the way the CLI does, so persisted
// specs are self-contained and a restarted daemon rebuilds byte-for-byte
// identical options.
func (sp JobSpec) normalize() JobSpec {
	if sp.Method == "" {
		sp.Method = string(mpmb.MethodOLS)
	}
	def := mpmb.DefaultOptions()
	if sp.Trials == 0 {
		sp.Trials = def.Trials
	}
	if sp.PrepTrials == 0 {
		sp.PrepTrials = def.PrepTrials
	}
	if sp.Mu == 0 {
		sp.Mu = def.Mu
	}
	if sp.TopK == 0 {
		sp.TopK = 5
	}
	return sp
}

// options maps the spec onto engine options for one run attempt.
func (sp JobSpec) options(obs *mpmb.Observer, now time.Time) mpmb.Options {
	opt := mpmb.Options{
		Method:         mpmb.Method(sp.Method),
		Trials:         sp.Trials,
		PrepTrials:     sp.PrepTrials,
		Seed:           sp.Seed,
		Mu:             sp.Mu,
		Workers:        sp.Workers,
		AuditEvery:     sp.AuditEvery,
		MaxEscalations: sp.MaxEscalations,
		Epsilon:        sp.Epsilon,
		Observer:       obs,
	}
	if sp.StallTimeoutMS > 0 {
		opt.StallTimeout = time.Duration(sp.StallTimeoutMS) * time.Millisecond
	}
	if sp.DeadlineMS > 0 {
		opt.Deadline = now.Add(time.Duration(sp.DeadlineMS) * time.Millisecond)
	}
	opt.Query = sp.query()
	return opt
}

// cost is the admission charge against the tenant's trial budget.
func (sp JobSpec) cost() float64 {
	c := float64(sp.Trials)
	switch mpmb.Method(sp.Method) {
	case mpmb.MethodOLS, mpmb.MethodOLSKL:
		c += float64(sp.PrepTrials)
	}
	return c
}

// resumable reports whether the method can checkpoint and resume.
// Query variants cannot: the engine rejects Options.Resume alongside an
// active Query, so variant jobs run unsliced.
func (sp JobSpec) resumable() bool {
	return mpmb.Method(sp.Method) != mpmb.MethodExact && sp.query() == nil
}

// distributable reports whether the job may ride the dist coordinator's
// executor: sampling methods only, and none of the adaptive options —
// supervision reshapes the trial schedule mid-run, which an explicit
// executor rejects (see Options.Executor).
func (sp JobSpec) distributable() bool {
	switch mpmb.Method(sp.Method) {
	case mpmb.MethodOS, mpmb.MethodOLS, mpmb.MethodOLSKL:
	default:
		return false
	}
	// Query variants also stay local: the engine rejects an explicit
	// executor alongside an active Query (anchored trials localize around
	// the anchor, communities run per-subgraph).
	return sp.AuditEvery == 0 && sp.Epsilon == 0 && sp.DeadlineMS == 0 && sp.StallTimeoutMS == 0 &&
		sp.query() == nil
}

// Job is one admitted search: the persisted manifest fields plus the
// live runtime attachments (observer, event log, cancellation).
type Job struct {
	ID        string
	Tenant    string
	Spec      JobSpec
	Submitted time.Time

	mu         sync.Mutex
	state      JobState
	errMsg     string
	started    time.Time
	finished   time.Time
	trialsDone int
	ckptSaved  bool
	resumed    bool // this process resumed the job from a checkpoint
	result     *mpmb.Result
	obs        *mpmb.Observer // live while the runner holds the job

	// cancelled and suspend describe WHY the runner's context fired:
	// cancelled is a client action (terminal), suspend a drain action
	// (checkpoint and park). Set before cancel() so the runner can
	// classify the partial result it gets back.
	cancelMu  sync.Mutex
	cancel    context.CancelFunc
	cancelled bool
	suspend   bool

	events *eventLog
	done   chan struct{} // closed when the runner (or cancel-in-queue) finishes
}

// newJob builds a fresh job in the queued state.
func newJob(id, tenant string, spec JobSpec, now time.Time) *Job {
	return &Job{
		ID:        id,
		Tenant:    tenant,
		Spec:      spec,
		Submitted: now,
		state:     JobQueued,
		events:    newEventLog(eventLogDepth),
		done:      make(chan struct{}),
	}
}

// manifest is the persisted form of a job — everything a restart needs.
type manifest struct {
	ID         string    `json:"id"`
	Tenant     string    `json:"tenant"`
	Spec       JobSpec   `json:"spec"`
	State      JobState  `json:"state"`
	Error      string    `json:"error,omitempty"`
	Submitted  time.Time `json:"submitted"`
	Started    time.Time `json:"started,omitempty"`
	Finished   time.Time `json:"finished,omitempty"`
	TrialsDone int       `json:"trials_done,omitempty"`
	Checkpoint bool      `json:"checkpoint,omitempty"`
}

func (j *Job) manifest() manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return manifest{
		ID: j.ID, Tenant: j.Tenant, Spec: j.Spec,
		State: j.state, Error: j.errMsg,
		Submitted: j.Submitted, Started: j.started, Finished: j.finished,
		TrialsDone: j.trialsDone, Checkpoint: j.ckptSaved,
	}
}

func jobFromManifest(m manifest) *Job {
	j := newJob(m.ID, m.Tenant, m.Spec, m.Submitted)
	j.state = m.State
	j.errMsg = m.Error
	j.started, j.finished = m.Started, m.Finished
	j.trialsDone = m.TrialsDone
	j.ckptSaved = m.Checkpoint
	// Terminal jobs are loaded for queries only — their streams are over.
	// A suspended job stays open: recovery requeues it and its runner
	// finalizes it a second time.
	if m.State.terminal() {
		j.events.close()
		close(j.done)
	}
	return j
}

func (j *Job) setState(st JobState, errMsg string) {
	j.mu.Lock()
	j.state = st
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.mu.Unlock()
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setObserver publishes the runner's live observer (nil detaches).
func (j *Job) setObserver(obs *mpmb.Observer) {
	j.mu.Lock()
	j.obs = obs
	j.mu.Unlock()
}

// liveMetrics snapshots the runner's observer, or returns the finished
// result's final snapshot; nil when neither exists.
func (j *Job) liveMetrics() *telemetry.Metrics {
	j.mu.Lock()
	obs, res := j.obs, j.result
	j.mu.Unlock()
	if obs != nil {
		m := obs.Metrics()
		return &m
	}
	if res != nil {
		return res.Metrics
	}
	return nil
}

// setResult stores the finished (or honest-partial) result.
func (j *Job) setResult(res *mpmb.Result) {
	j.mu.Lock()
	j.result = res
	j.mu.Unlock()
}

// progress updates the completed-trial watermark after a checkpoint.
func (j *Job) progress(trialsDone int, checkpointed bool) {
	j.mu.Lock()
	if trialsDone > j.trialsDone {
		j.trialsDone = trialsDone
	}
	if checkpointed {
		j.ckptSaved = true
	}
	j.mu.Unlock()
}

// requestCancel marks a client cancellation and fires the runner's
// context (if the runner is live). Returns false if the job is already
// terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.terminal() || j.state == JobSuspended {
		j.mu.Unlock()
		return false
	}
	j.mu.Unlock()
	j.cancelMu.Lock()
	j.cancelled = true
	cancel := j.cancel
	j.cancelMu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// requestSuspend marks a drain-driven suspension and fires the context.
func (j *Job) requestSuspend() {
	j.cancelMu.Lock()
	j.suspend = true
	cancel := j.cancel
	j.cancelMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// interruptKind classifies why the runner's context fired.
func (j *Job) interruptKind() (cancelled, suspend bool) {
	j.cancelMu.Lock()
	defer j.cancelMu.Unlock()
	return j.cancelled, j.suspend
}

// attachCancel publishes the live runner's cancel hook, honouring
// requests that raced ahead of the runner start.
func (j *Job) attachCancel(cancel context.CancelFunc) {
	j.cancelMu.Lock()
	j.cancel = cancel
	fire := j.cancelled || j.suspend
	j.cancelMu.Unlock()
	if fire {
		cancel()
	}
}

// statusDoc is the wire form of a job's status.
type statusDoc struct {
	ID              string             `json:"id"`
	Tenant          string             `json:"tenant"`
	State           JobState           `json:"state"`
	Error           string             `json:"error,omitempty"`
	Spec            JobSpec            `json:"spec"`
	Submitted       time.Time          `json:"submitted"`
	Started         *time.Time         `json:"started,omitempty"`
	Finished        *time.Time         `json:"finished,omitempty"`
	TrialsDone      int                `json:"trials_done"`
	Checkpointed    bool               `json:"checkpointed"`
	Resumed         bool               `json:"resumed,omitempty"`
	ResultAvailable bool               `json:"result_available"`
	Metrics         *telemetry.Metrics `json:"metrics,omitempty"`
}

// status snapshots the job for the API. live metrics come from the
// job's observer when it is running.
func (j *Job) status(m *telemetry.Metrics) statusDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := statusDoc{
		ID: j.ID, Tenant: j.Tenant, State: j.state, Error: j.errMsg,
		Spec: j.Spec, Submitted: j.Submitted,
		TrialsDone: j.trialsDone, Checkpointed: j.ckptSaved, Resumed: j.resumed,
		ResultAvailable: j.state == JobDone || (j.result != nil && j.state.terminal()),
		Metrics:         m,
	}
	if !j.started.IsZero() {
		t := j.started
		doc.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		doc.Finished = &t
	}
	return doc
}

// resultDoc is the wire form of a finished job's result.
type resultDoc struct {
	ID         string               `json:"id"`
	Method     string               `json:"method"`
	Trials     int                  `json:"trials"`
	PrepTrials int                  `json:"prep_trials,omitempty"`
	Partial    bool                 `json:"partial,omitempty"`
	TrialsDone int                  `json:"trials_done,omitempty"`
	Adaptive   *mpmb.AdaptiveReport `json:"adaptive,omitempty"`
	Metrics    *telemetry.Metrics   `json:"metrics,omitempty"`
	Top        []estimateDoc        `json:"top"`
	// Communities carries the per-community top lists for a
	// per-community query; Top then holds the overall best-of-best.
	Communities []communityDoc `json:"communities,omitempty"`
}

type communityDoc struct {
	Community int           `json:"community"`
	Top       []estimateDoc `json:"top"`
}

type estimateDoc struct {
	U1     uint32  `json:"u1"`
	U2     uint32  `json:"u2"`
	V1     uint32  `json:"v1"`
	V2     uint32  `json:"v2"`
	Weight float64 `json:"weight"`
	P      float64 `json:"p"`
}

// resultDocFrom renders a Result for the wire and for persistence.
func resultDocFrom(id string, spec JobSpec, res *mpmb.Result) resultDoc {
	doc := resultDoc{
		ID: id, Method: res.Method, Trials: res.Trials, PrepTrials: res.PrepTrials,
		Partial: res.Partial, Adaptive: res.Adaptive, Metrics: res.Metrics,
		Top: []estimateDoc{},
	}
	if res.Partial {
		doc.TrialsDone = res.TrialsDone
	}
	for _, e := range res.TopK(spec.TopK) {
		doc.Top = append(doc.Top, estimateDoc{
			U1: e.B.U1, U2: e.B.U2, V1: e.B.V1, V2: e.B.V2,
			Weight: e.Weight, P: e.P,
		})
	}
	for _, cr := range res.Communities {
		cd := communityDoc{Community: cr.Community, Top: []estimateDoc{}}
		for _, e := range cr.Result.TopK(spec.TopK) {
			cd.Top = append(cd.Top, estimateDoc{
				U1: e.B.U1, U2: e.B.U2, V1: e.B.V1, V2: e.B.V2,
				Weight: e.Weight, P: e.P,
			})
		}
		doc.Communities = append(doc.Communities, cd)
	}
	return doc
}

// validate rejects specs the engine would refuse, before admission.
func (s *Server) validateSpec(spec JobSpec) error {
	if _, err := s.resolveGraph(spec.Graph); err != nil {
		return err
	}
	if s.cfg.MaxTrials > 0 && spec.Trials+spec.PrepTrials > s.cfg.MaxTrials {
		return fmt.Errorf("trials %d exceed the per-job cap %d", spec.Trials+spec.PrepTrials, s.cfg.MaxTrials)
	}
	if spec.cost() > s.cfg.TenantTrialBurst {
		return fmt.Errorf("trial cost %.0f exceeds the tenant burst budget %.0f; split the job", spec.cost(), s.cfg.TenantTrialBurst)
	}
	return spec.options(nil, time.Now()).Validate()
}
