package serve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// fetchResultDoc downloads and decodes a finished job's result.
func fetchResultDoc(t *testing.T, base, id string) resultDoc {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d", id, resp.StatusCode)
	}
	var doc resultDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestAnchoredJobEndToEnd: an anchored job spec runs through the daemon
// and returns the same result as a direct engine call, every reported
// butterfly containing the anchor. CheckpointEvery is left tiny and
// positive on purpose: query-variant jobs must run unsliced (the engine
// rejects Resume alongside an active Query), so a sliced run would fail.
func TestAnchoredJobEndToEnd(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), Workers: 1,
		CheckpointEvery: time.Millisecond,
	})

	id, _ := submitJob(t, hs.URL, "", map[string]any{
		"graph": "fig1.graph", "method": "os", "trials": 4000, "seed": 7,
		"anchor_l": 1,
	})
	if id == "" {
		t.Fatal("anchored job rejected")
	}
	waitState(t, hs.URL, id, JobDone)
	doc := fetchResultDoc(t, hs.URL, id)
	if len(doc.Top) == 0 {
		t.Fatal("anchored job returned no estimates")
	}
	for _, e := range doc.Top {
		if e.U1 != 1 && e.U2 != 1 {
			t.Fatalf("estimate %+v does not contain anchor L1", e)
		}
	}

	// Bit-identical to the engine called directly with the same spec.
	b := mpmb.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 2, 0.6)
	b.MustAddEdge(0, 2, 1, 0.8)
	b.MustAddEdge(1, 0, 3, 0.3)
	b.MustAddEdge(1, 1, 3, 0.4)
	b.MustAddEdge(1, 2, 1, 0.7)
	anchor := mpmb.VertexID(1)
	opt := mpmb.DefaultOptions()
	opt.Method = mpmb.MethodOS
	opt.Trials = 4000
	opt.Seed = 7
	opt.Query = &mpmb.Query{AnchorL: &anchor}
	res, err := mpmb.Search(b.Build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	direct := res.TopK(5)
	if len(direct) != len(doc.Top) {
		t.Fatalf("daemon top %d estimates, direct %d", len(doc.Top), len(direct))
	}
	for i, e := range doc.Top {
		d := direct[i]
		if e.U1 != d.B.U1 || e.U2 != d.B.U2 || e.V1 != d.B.V1 || e.V2 != d.B.V2 || e.P != d.P {
			t.Fatalf("estimate %d: daemon %+v, direct %+v", i, e, d)
		}
	}
}

// TestCommunityJobEndToEnd: a per-community job returns the
// per-community top lists alongside the overall best.
func TestCommunityJobEndToEnd(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), Workers: 1, CheckpointEvery: -1,
	})

	// One community holding the whole graph, so its top list must be
	// non-empty and remapped to parent vertex ids.
	id, _ := submitJob(t, hs.URL, "", map[string]any{
		"graph": "fig1.graph", "method": "os", "trials": 4000, "seed": 3,
		"communities_l": []int{0, 0}, "communities_r": []int{0, 0, 0},
	})
	if id == "" {
		t.Fatal("community job rejected")
	}
	waitState(t, hs.URL, id, JobDone)
	doc := fetchResultDoc(t, hs.URL, id)
	if len(doc.Communities) != 1 {
		t.Fatalf("got %d community blocks, want 1", len(doc.Communities))
	}
	if doc.Communities[0].Community != 0 || len(doc.Communities[0].Top) == 0 {
		t.Fatalf("community block %+v malformed", doc.Communities[0])
	}
	if len(doc.Top) == 0 {
		t.Fatal("community job returned no overall estimates")
	}
}

// TestQueryValidationErrorsAre400s: structurally invalid query specs are
// refused at admission with 400, never 500, and charge no quota.
func TestQueryValidationErrorsAre400s(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), CheckpointEvery: -1,
	})

	for name, spec := range map[string]map[string]any{
		"two anchors": {
			"graph": "fig1.graph", "trials": 1000,
			"anchor_l": 0, "anchor_r": 1,
		},
		"anchor plus communities": {
			"graph": "fig1.graph", "trials": 1000,
			"anchor_l": 0, "communities_l": []int{0, 0}, "communities_r": []int{0, 0, 0},
		},
		"anchored mc-vp": {
			"graph": "fig1.graph", "method": "mc-vp", "trials": 1000,
			"anchor_l": 0,
		},
		"adaptive prep without prep phase": {
			"graph": "fig1.graph", "method": "os", "trials": 1000,
			"adaptive_prep": true,
		},
	} {
		id, resp := submitJob(t, hs.URL, "", spec)
		if id != "" {
			t.Fatalf("%s: accepted", name)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestAnchoredJobChargesSameBudget: an anchor restricts the trial scan
// but not the admission price — anchored jobs charge the tenant trial
// budget exactly like their unanchored twins.
func TestAnchoredJobChargesSameBudget(t *testing.T) {
	plain := JobSpec{Graph: "g", Method: "ols", Trials: 5000, PrepTrials: 1000}
	anchored := plain
	u := uint32(0)
	anchored.AnchorL = &u
	communities := plain
	communities.CommunitiesL = []int{0, 0}
	communities.CommunitiesR = []int{0, 0, 0}
	adaptive := plain
	adaptive.AdaptivePrep = true
	for name, sp := range map[string]JobSpec{
		"anchored": anchored, "community": communities, "adaptive": adaptive,
	} {
		if sp.cost() != plain.cost() {
			t.Errorf("%s cost %.0f, plain cost %.0f", name, sp.cost(), plain.cost())
		}
	}

	// End to end: a burst budget sized for exactly one job admits the
	// plain job and 429s the anchored twin — anchored admission draws
	// from the same bucket at the same price.
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), Workers: 1, CheckpointEvery: -1,
		TenantTrialRate: 1, TenantTrialBurst: 6000, TenantJobs: 10,
	})
	plainSpec := map[string]any{
		"graph": "fig1.graph", "method": "ols", "trials": 5000, "prep_trials": 1000, "seed": 1,
	}
	id1, _ := submitJob(t, hs.URL, "dana", plainSpec)
	if id1 == "" {
		t.Fatal("budgeted plain job rejected")
	}
	anchoredSpec := map[string]any{
		"graph": "fig1.graph", "method": "ols", "trials": 5000, "prep_trials": 1000, "seed": 2,
		"anchor_l": 0,
	}
	id2, resp := submitJob(t, hs.URL, "dana", anchoredSpec)
	if id2 != "" {
		t.Fatal("anchored job admitted past the drained trial budget")
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained budget answer = HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After hint")
	}
}
