package serve

import (
	"sync"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// eventLogDepth bounds each job's in-memory event ring. Streaming
// clients that fall further behind than this miss the overwritten
// events (visible as a sequence gap) — the log never grows unbounded
// and never stalls the run, matching the observer's drop-not-stall
// contract.
const eventLogDepth = 256

// logEvent is one sequenced telemetry event as streamed to clients.
type logEvent struct {
	Seq   int64      `json:"seq"`
	Event mpmb.Event `json:"event"`
}

// eventLog is a bounded, sequence-numbered event ring with follower
// wakeups: the job's observer appends, HTTP streamers read from a
// sequence number and block on a broadcast channel when caught up.
type eventLog struct {
	mu     sync.Mutex
	buf    []logEvent // ring, oldest first
	next   int64      // sequence number of the next append
	wake   chan struct{}
	closed bool
}

func newEventLog(depth int) *eventLog {
	if depth <= 0 {
		depth = eventLogDepth
	}
	return &eventLog{buf: make([]logEvent, 0, depth), wake: make(chan struct{})}
}

// append records an event, overwriting the oldest when full.
func (l *eventLog) append(e mpmb.Event) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	rec := logEvent{Seq: l.next, Event: e}
	l.next++
	if len(l.buf) == cap(l.buf) {
		copy(l.buf, l.buf[1:])
		l.buf[len(l.buf)-1] = rec
	} else {
		l.buf = append(l.buf, rec)
	}
	wake := l.wake
	l.wake = make(chan struct{})
	l.mu.Unlock()
	close(wake)
}

// close marks the stream finished and wakes every follower. Idempotent.
func (l *eventLog) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	wake := l.wake
	l.mu.Unlock()
	close(wake)
}

// since returns the buffered events with Seq >= from, plus the channel
// that closes on the next append (for blocking reads) and whether the
// log has closed. A caught-up follower waits on the channel; events
// older than the ring are simply gone (the sequence numbers expose the
// gap).
func (l *eventLog) since(from int64) (events []logEvent, wake <-chan struct{}, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range l.buf {
		if rec.Seq >= from {
			events = append(events, rec)
		}
	}
	return events, l.wake, l.closed
}
