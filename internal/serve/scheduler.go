package serve

import (
	"context"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/dist"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// scheduler owns the bounded admission queue and the worker pool. The
// queue depth bounds CLIENT admissions only; recovered jobs from a
// previous process were already accepted and are requeued past the
// bound — accepted work is never shed.
type scheduler struct {
	s       *Server
	workers int
	depth   int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job
	stopped bool
	running map[*Job]struct{}

	wg sync.WaitGroup
}

func newScheduler(s *Server, workers, depth int) *scheduler {
	sc := &scheduler{s: s, workers: workers, depth: depth, running: make(map[*Job]struct{})}
	sc.cond = sync.NewCond(&sc.mu)
	return sc
}

func (sc *scheduler) start() {
	for i := 0; i < sc.workers; i++ {
		sc.wg.Add(1)
		go sc.worker()
	}
}

// enqueue admits a client job; false means the queue is full (429) or
// the daemon is draining (503 upstream — checked before quota charge).
func (sc *scheduler) enqueue(j *Job) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.stopped || len(sc.queue) >= sc.depth {
		return false
	}
	sc.queue = append(sc.queue, j)
	sc.cond.Signal()
	return true
}

// enqueueRecovered requeues a job recovered from disk, bypassing the
// depth bound (see the scheduler doc comment).
func (sc *scheduler) enqueueRecovered(j *Job) {
	sc.mu.Lock()
	sc.queue = append(sc.queue, j)
	sc.cond.Signal()
	sc.mu.Unlock()
}

// queueLen reports the current queue occupancy.
func (sc *scheduler) queueLen() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.queue)
}

// worker pulls jobs until drain. Draining workers do not start queued
// jobs — those stay persisted as queued for the next process.
func (sc *scheduler) worker() {
	defer sc.wg.Done()
	for {
		sc.mu.Lock()
		for len(sc.queue) == 0 && !sc.stopped {
			sc.cond.Wait()
		}
		if sc.stopped {
			sc.mu.Unlock()
			return
		}
		j := sc.queue[0]
		sc.queue = sc.queue[1:]
		sc.running[j] = struct{}{}
		sc.mu.Unlock()

		sc.runJob(j)

		sc.mu.Lock()
		delete(sc.running, j)
		sc.mu.Unlock()
	}
}

// drain stops job starts, gives in-flight runs up to grace to finish
// naturally, then checkpoint-suspends the stragglers and waits for the
// workers to unwind.
func (sc *scheduler) drain(ctx context.Context, grace time.Duration) error {
	sc.mu.Lock()
	sc.stopped = true
	sc.cond.Broadcast()
	sc.mu.Unlock()

	done := make(chan struct{})
	go func() {
		sc.wg.Wait()
		close(done)
	}()

	graceT := time.NewTimer(grace)
	defer graceT.Stop()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	case <-graceT.C:
	}

	sc.mu.Lock()
	stragglers := make([]*Job, 0, len(sc.running))
	for j := range sc.running {
		stragglers = append(stragglers, j)
	}
	sc.mu.Unlock()
	for _, j := range stragglers {
		j.requestSuspend()
	}

	// Suspension is one checkpoint save away; bound the wait generously
	// rather than by the (possibly already-expired) caller context.
	final := time.NewTimer(30 * time.Second)
	defer final.Stop()
	select {
	case <-done:
		return nil
	case <-final.C:
		return fmt.Errorf("serve: drain: workers failed to unwind")
	}
}

// testJobHook, when non-nil, runs at the top of every runJob — tests
// inject deterministic faults behind the panic shield through it.
var testJobHook func(*Job)

// runJob executes one job end to end: observer + event plumbing, graph
// lookup, checkpoint-resumed and checkpoint-sliced engine runs, and
// terminal-state bookkeeping. Panics anywhere inside fail only this job.
func (sc *scheduler) runJob(j *Job) {
	s := sc.s

	defer func() {
		if r := recover(); r != nil {
			s.stats.panics.Add(1)
			sc.finalize(j, JobFailed, fmt.Sprintf("runner panic: %v\n%s", r, debug.Stack()), nil)
		}
	}()
	// The event ring closes on the way out, AFTER the observer defer
	// below has drained the hub's buffered events into it (defers run
	// LIFO) — closing inside finalize would drop the tail of the stream.
	defer j.events.close()
	if testJobHook != nil {
		testJobHook(j)
	}

	// A cancel that raced the queue: honour it without running.
	if cancelled, _ := j.interruptKind(); cancelled {
		sc.finalize(j, JobCancelled, "", nil)
		return
	}

	j.mu.Lock()
	j.state = JobRunning
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.mu.Unlock()
	s.store.saveManifest(j.manifest())

	path, err := s.resolveGraph(j.Spec.Graph)
	if err != nil {
		sc.finalize(j, JobFailed, err.Error(), nil)
		return
	}
	entry, err := s.graphs.get(path)
	if err != nil {
		sc.finalize(j, JobFailed, fmt.Sprintf("loading graph: %v", err), nil)
		return
	}

	// Event plumbing: ring for streamers, optional JSONL journal on
	// disk. Journal damage is counted, never fatal to the run.
	var journalF *os.File
	var journal *telemetry.JournalWriter
	if s.cfg.JournalEvents {
		f, err := os.OpenFile(s.store.journalPath(j.ID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			journalF = f
			journal = telemetry.NewJournalWriter(f)
		}
	}
	obs := mpmb.NewObserver(mpmb.ObserverConfig{OnEvent: func(e mpmb.Event) {
		j.events.append(e)
		if journal != nil {
			journal.Write(e)
		}
	}})
	j.setObserver(obs)
	defer func() {
		j.setObserver(nil)
		obs.Close()
		if journalF != nil {
			journalF.Close()
		}
	}()
	obs.InstrumentStore(s.store.ckpt)

	// Resume from a persisted checkpoint if one exists (drain suspension
	// or a crashed process). The engine validates it against the spec and
	// the graph CRC; the finished result is bit-identical to an
	// uninterrupted run.
	ck, err := s.store.loadCheckpoint(j.ID)
	if err != nil {
		sc.finalize(j, JobFailed, fmt.Sprintf("loading checkpoint: %v", err), nil)
		return
	}
	if ck != nil {
		j.mu.Lock()
		j.resumed = true
		j.mu.Unlock()
	}

	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.attachCancel(cancel)

	res, err := sc.runSliced(runCtx, j, entry, obs, ck)
	if err != nil {
		sc.finalize(j, JobFailed, err.Error(), nil)
		return
	}
	if res == nil {
		// runSliced already finalized (cancelled or suspended).
		return
	}
	sc.finalize(j, JobDone, "", res)
}

// runSliced drives the engine in checkpoint-length slices: each slice
// runs with a context that expires after CheckpointEvery, the partial
// result's checkpoint is persisted through the retrying store, and the
// next slice resumes from it. Because every trial's stream derives from
// (Seed, trial index), the sliced run's final Result is bit-identical
// to an unsliced one.
//
// Returns (result, nil) for a terminal result — complete, or an honest
// partial from the engine's own deadline/epsilon stopping. Returns
// (nil, nil) after finalizing a cancellation or suspension itself.
func (sc *scheduler) runSliced(runCtx context.Context, j *Job, entry *graphEntry, obs *mpmb.Observer, ck *mpmb.Checkpoint) (*mpmb.Result, error) {
	s := sc.s
	spec := j.Spec
	slicing := spec.resumable() && s.cfg.CheckpointEvery > 0
	// The per-attempt deadline anchors once, before the first slice —
	// slicing must not stretch the budget.
	started := time.Now()

	// Degradation record across slices: the dist→local fallback is noted
	// once per job, at the merged prefix where it first engaged, and
	// stamped onto whichever slice's result ends the run.
	var fellBack bool
	var fellBackAt int
	noteFallback := func(res *mpmb.Result) {
		if !fellBack || res == nil {
			return
		}
		if res.Adaptive == nil {
			reason := mpmb.StopCompleted
			if res.Partial {
				reason = mpmb.StopCancelled
			}
			res.Adaptive = &mpmb.AdaptiveReport{StopReason: reason, FinalMethod: res.Method}
		}
		res.Adaptive.Transitions = append(res.Adaptive.Transitions, mpmb.Transition{
			From: "dist", To: "local", Reason: "fleet-unreachable", AtTrial: fellBackAt,
		})
	}

	for {
		opt := spec.options(obs, started)
		opt.Resume = ck
		var distEx *dist.Executor
		if s.coord != nil && spec.distributable() {
			// Dist mode: the sampling phase fans out to the worker fleet.
			// Slicing still applies — a slice-end interrupt drains in-flight
			// leases into the merged prefix before collecting, so every
			// slice commits real progress even when CheckpointEvery is
			// shorter than one lease's execution time, and the next slice
			// re-registers the remainder.
			distEx = &dist.Executor{C: s.coord}
			if s.cfg.DistFallback > 0 {
				distEx.Fallback = &core.LocalExecutor{Workers: spec.Workers}
				distEx.FleetGrace = s.cfg.DistFallback
			}
			opt.Executor = distEx
		}

		sliceCtx := runCtx
		var sliceCancel context.CancelFunc
		if slicing {
			sliceCtx, sliceCancel = context.WithTimeout(runCtx, s.cfg.CheckpointEvery)
		}
		var res *mpmb.Result
		var err error
		if ck != nil && ck.Prepare {
			// A prepare-phase OLS checkpoint resumes through the package
			// front door: the Searcher's cached candidate set cannot help a
			// run interrupted before the candidate set existed.
			res, err = mpmb.SearchContext(sliceCtx, entry.g, opt)
		} else {
			res, err = entry.searcher.SearchContext(sliceCtx, opt)
		}
		if sliceCancel != nil {
			sliceCancel()
		}
		if err != nil {
			return nil, err
		}
		if distEx != nil && !fellBack {
			if fb, at := distEx.FellBack(); fb {
				fellBack, fellBackAt = true, at
				s.stats.distFallbacks.Add(1)
			}
		}

		if !res.Partial {
			noteFallback(res)
			return res, nil
		}

		// Partial result: either the engine stopped itself honestly
		// (deadline, epsilon — Adaptive carries the reason) or a context
		// fired (slice timer, client cancel, drain suspend).
		interrupted := res.Adaptive == nil || res.Adaptive.StopReason == mpmb.StopCancelled
		if !interrupted {
			noteFallback(res)
			return res, nil
		}

		checkpointed := false
		if res.Checkpoint != nil {
			if err := s.store.saveCheckpoint(j.ID, res.Checkpoint); err != nil {
				// Periodic checkpoint failure is survivable (the run can
				// continue and retry next slice); an interrupt without a
				// persisted checkpoint loses the prefix, so surface it.
				if cancelled, suspend := j.interruptKind(); cancelled || suspend {
					return nil, fmt.Errorf("checkpointing interrupted run: %w", err)
				}
			} else {
				checkpointed = true
				s.stats.checkpoints.Add(1)
			}
		}
		j.progress(res.TrialsDone, checkpointed)
		s.store.saveManifest(j.manifest())

		cancelled, suspend := j.interruptKind()
		switch {
		case cancelled:
			noteFallback(res)
			sc.finalize(j, JobCancelled, "", res)
			return nil, nil
		case suspend:
			noteFallback(res)
			sc.finalize(j, JobSuspended, "", res)
			return nil, nil
		}

		// Slice timer fired: continue from the checkpoint. A resumable
		// method that returned no checkpoint cannot make progress by
		// looping — treat the partial as terminal rather than spin.
		if res.Checkpoint == nil {
			noteFallback(res)
			return res, nil
		}
		ck = res.Checkpoint
	}
}

// finalize moves a job to its terminal (or suspended) state: persists
// the result document when one exists, updates quota occupancy, closes
// the event stream, and saves the final manifest.
func (sc *scheduler) finalize(j *Job, st JobState, errMsg string, res *mpmb.Result) {
	s := sc.s

	if res != nil {
		j.setResult(res)
		j.progress(res.TrialsDone, false)
		if !res.Partial {
			j.progress(res.Trials, false)
		}
		if st != JobSuspended {
			if err := s.store.saveResult(resultDocFrom(j.ID, j.Spec, res)); err != nil && errMsg == "" {
				st, errMsg = JobFailed, err.Error()
			}
		}
	}

	j.mu.Lock()
	alreadyClosed := j.state.terminal() || j.state == JobSuspended
	j.state = st
	if errMsg != "" {
		j.errMsg = errMsg
	}
	if st != JobSuspended {
		j.finished = time.Now()
	}
	j.mu.Unlock()
	if alreadyClosed {
		return
	}

	switch st {
	case JobDone:
		s.stats.completed.Add(1)
		// The run finished; its checkpoint is obsolete.
		s.store.removeCheckpoint(j.ID)
	case JobFailed:
		s.stats.failed.Add(1)
	case JobCancelled:
		s.stats.cancelled.Add(1)
	case JobSuspended:
		s.stats.suspended.Add(1)
	}
	if st.terminal() {
		// Suspended jobs keep their concurrency slot on the books: the
		// daemon still owes the work, and recovery re-occupies it.
		s.quotas.release(j.Tenant)
	}

	s.store.saveManifest(j.manifest())
	close(j.done)
}
