package serve

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// TestDistFallbackDegradesWorkerlessJob: a -dist daemon with a
// -dist-fallback grace and NO workers joined must degrade an eligible
// job to the in-process pool, finish it bit-identically, record the
// dist→local transition in the result's adaptive report, and count the
// degradation in /metrics.
func TestDistFallbackDegradesWorkerlessJob(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), CheckpointEvery: -1,
		Dist: true, DistFallback: 50 * time.Millisecond,
	})

	id, _ := submitJob(t, hs.URL, "", map[string]any{
		"graph": "fig1.graph", "method": "os", "trials": 20000, "seed": 7, "top_k": 3,
	})
	if id == "" {
		t.Fatal("submission rejected")
	}
	doc := waitState(t, hs.URL, id, JobDone, JobFailed)
	if doc.State != JobDone {
		t.Fatalf("workerless distributed job failed instead of degrading: %s", doc.Error)
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got resultDoc
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Adaptive == nil || len(got.Adaptive.Transitions) == 0 {
		t.Fatalf("degraded result carries no transition record: %+v", got.Adaptive)
	}
	tr := got.Adaptive.Transitions[len(got.Adaptive.Transitions)-1]
	if tr.From != "dist" || tr.To != "local" || tr.Reason != "fleet-unreachable" {
		t.Fatalf("transition = %+v, want dist→local (fleet-unreachable)", tr)
	}

	// Degradation must not cost exactness: the Top entries still match a
	// direct engine run bit-for-bit.
	g, err := mpmb.LoadGraph(filepath.Join(graphs, "fig1.graph"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mpmb.Search(g, mpmb.Options{Method: mpmb.MethodOS, Trials: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := resultDocFrom(id, JobSpec{TopK: 3}, ref)
	if len(got.Top) != len(want.Top) {
		t.Fatalf("%d top entries, want %d", len(got.Top), len(want.Top))
	}
	for i := range got.Top {
		if got.Top[i] != want.Top[i] {
			t.Fatalf("top[%d] = %+v, want %+v (degraded run must stay bit-identical)", i, got.Top[i], want.Top[i])
		}
	}

	if m := fetchMetrics(t, hs.URL); !strings.Contains(m, "mpmb_serve_dist_fallbacks_total 1") {
		t.Fatalf("fallback counter not incremented:\n%s", m)
	}
}
