package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/dist"
)

// TestDistServeFansOutJobs: a -dist daemon mounts the coordinator on
// its own listener, hands an eligible job's trials to a joined worker
// fleet, and the fetched result is still bit-identical to a direct
// engine call — the fan-out must add zero noise on top of the daemon.
func TestDistServeFansOutJobs(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), CheckpointEvery: -1, Dist: true,
	})

	// Two workers join the daemon's own /dist/v1 endpoints.
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for _, name := range []string{"w0", "w1"} {
		go (&dist.Worker{Base: hs.URL, Name: name, Pool: 1}).Run(ctx)
	}

	id, _ := submitJob(t, hs.URL, "", map[string]any{
		"graph": "fig1.graph", "method": "os", "trials": 20000, "seed": 7, "top_k": 3,
	})
	if id == "" {
		t.Fatal("submission rejected")
	}
	doc := waitState(t, hs.URL, id, JobDone, JobFailed)
	if doc.State != JobDone {
		t.Fatalf("distributed job failed: %s", doc.Error)
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got resultDoc
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	g, err := mpmb.LoadGraph(filepath.Join(graphs, "fig1.graph"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mpmb.Search(g, mpmb.Options{Method: mpmb.MethodOS, Trials: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := resultDocFrom(id, JobSpec{TopK: 3}, ref)
	if len(got.Top) != len(want.Top) {
		t.Fatalf("%d top entries, want %d", len(got.Top), len(want.Top))
	}
	for i := range got.Top {
		if got.Top[i] != want.Top[i] {
			t.Fatalf("top[%d] = %+v, want %+v (fan-out must be bit-identical)", i, got.Top[i], want.Top[i])
		}
	}
}

// TestDistServeIneligibleJobsStayLocal: adaptive jobs reshape their
// trial schedule mid-run and must not ride the fleet — on a -dist
// daemon with NO workers joined, they still finish locally.
func TestDistServeIneligibleJobsStayLocal(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(), CheckpointEvery: -1, Dist: true,
	})
	id, _ := submitJob(t, hs.URL, "", map[string]any{
		"graph": "fig1.graph", "method": "ols", "trials": 4000, "audit_every": 500, "seed": 7,
	})
	if id == "" {
		t.Fatal("submission rejected")
	}
	doc := waitState(t, hs.URL, id, JobDone, JobFailed)
	if doc.State != JobDone {
		t.Fatalf("adaptive job on a workerless -dist daemon failed: %s", doc.Error)
	}
}

// TestJobSpecDistributable pins the eligibility rule.
func TestJobSpecDistributable(t *testing.T) {
	base := JobSpec{Method: "os", Trials: 1000}
	if !base.distributable() {
		t.Fatal("plain os job not distributable")
	}
	for name, sp := range map[string]JobSpec{
		"exact":   {Method: "exact"},
		"mc-vp":   {Method: "mc-vp"},
		"audit":   {Method: "ols", AuditEvery: 10},
		"epsilon": {Method: "os", Epsilon: 0.1},
		"deadline": {
			Method: "os", DeadlineMS: 1000,
		},
		"stall": {Method: "os", StallTimeoutMS: 1000},
	} {
		if sp.distributable() {
			t.Errorf("%s job reported distributable", name)
		}
	}
}
