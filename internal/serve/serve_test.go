package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// writeFigure1 saves the paper's running example under dir as name.
func writeFigure1(t *testing.T, dir, name string) {
	t.Helper()
	b := mpmb.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 2, 0.6)
	b.MustAddEdge(0, 2, 1, 0.8)
	b.MustAddEdge(1, 0, 3, 0.3)
	b.MustAddEdge(1, 1, 3, 0.4)
	b.MustAddEdge(1, 2, 1, 0.7)
	if err := mpmb.SaveGraph(filepath.Join(dir, name), b.Build()); err != nil {
		t.Fatal(err)
	}
}

// buildMeshGraph is a deterministic denser fixture whose OS trials are
// slow enough for drain/suspend races to be controllable.
func buildMeshGraph(t *testing.T, dir, name string) *mpmb.Graph {
	t.Helper()
	const nl, nr = 40, 40
	b := mpmb.NewBuilder(nl, nr)
	for u := 0; u < nl; u++ {
		for k := 0; k < 10; k++ {
			v := (u*7 + k*5) % nr
			w := float64(1 + (u*13+v*29)%50)
			p := 0.2 + 0.6*float64((u*31+v*17)%100)/100
			b.AddEdge(uint32(u), uint32(v), w, p)
		}
	}
	g := b.Build()
	if err := mpmb.SaveGraph(filepath.Join(dir, name), g); err != nil {
		t.Fatal(err)
	}
	return g
}

// testServer stands up a Server plus an httptest front end.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func submitJob(t *testing.T, base, tenant string, spec map[string]any) (id string, resp *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var doc struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.ID, resp
	}
	return "", resp
}

func jobStatus(t *testing.T, base, id string) statusDoc {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var doc statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, base, id string, want ...JobState) statusDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		doc := jobStatus(t, base, id)
		for _, w := range want {
			if doc.State == w {
				return doc
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (err %q), wanted %v", id, doc.State, doc.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitRunFetchResult is the happy path: submit, poll to done,
// fetch the result, and check it is bit-identical to a direct engine
// call with the same options — the daemon must add zero noise.
func TestSubmitRunFetchResult(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{GraphRoot: graphs, StateDir: t.TempDir(), CheckpointEvery: -1})

	id, _ := submitJob(t, hs.URL, "", map[string]any{
		"graph": "fig1.graph", "method": "os", "trials": 20000, "seed": 7, "top_k": 3,
	})
	if id == "" {
		t.Fatal("submission rejected")
	}
	doc := waitState(t, hs.URL, id, JobDone, JobFailed)
	if doc.State != JobDone {
		t.Fatalf("job failed: %s", doc.Error)
	}
	if doc.TrialsDone != 20000 {
		t.Fatalf("trials_done = %d, want 20000", doc.TrialsDone)
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got resultDoc
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	g, err := mpmb.LoadGraph(filepath.Join(graphs, "fig1.graph"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mpmb.Search(g, mpmb.Options{Method: mpmb.MethodOS, Trials: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := resultDocFrom(id, JobSpec{TopK: 3}, ref)
	if len(got.Top) != len(want.Top) {
		t.Fatalf("%d top entries, want %d", len(got.Top), len(want.Top))
	}
	for i := range got.Top {
		if got.Top[i] != want.Top[i] {
			t.Fatalf("top[%d] = %+v, want %+v (service must be bit-identical)", i, got.Top[i], want.Top[i])
		}
	}

	// The event stream for a finished job replays and terminates.
	eresp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	sc := bufio.NewScanner(eresp.Body)
	lines := 0
	var lastSeq int64 = -1
	for sc.Scan() {
		var rec logEvent
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("event line %d: %v", lines, err)
		}
		if rec.Seq <= lastSeq {
			t.Fatalf("event sequence not increasing: %d after %d", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		lines++
	}
	if lines == 0 {
		t.Fatal("finished job streamed no events")
	}

	// Liveness, readiness and metrics answer.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		r, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", path, r.StatusCode)
		}
	}
}

// TestAdmissionQueueSaturation: with one worker pinned and a depth-1
// queue occupied, the next submission answers 429 with a Retry-After
// hint and leaves no job behind.
func TestAdmissionQueueSaturation(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	srv, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(),
		Workers: 1, QueueDepth: 1, CheckpointEvery: -1,
		TenantTrialRate: 1e12, TenantTrialBurst: 1e12, TenantJobs: 10,
	})

	long := map[string]any{"graph": "fig1.graph", "method": "os", "trials": 2_000_000_000, "seed": 1}

	id1, _ := submitJob(t, hs.URL, "", long)
	if id1 == "" {
		t.Fatal("first job rejected")
	}
	waitState(t, hs.URL, id1, JobRunning)

	id2, _ := submitJob(t, hs.URL, "", long)
	if id2 == "" {
		t.Fatal("second job rejected with the queue empty")
	}

	id3, resp := submitJob(t, hs.URL, "", long)
	if id3 != "" {
		t.Fatal("third job admitted past a full queue")
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full answer = HTTP %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}
	if srv.sched.queueLen() != 1 {
		t.Fatalf("queue length %d after rejection, want 1", srv.sched.queueLen())
	}
	// The rejected job left no manifest to recover.
	entries, err := os.ReadDir(filepath.Join(srv.cfg.StateDir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d manifests on disk, want 2 (rejection must leave no residue)", len(entries))
	}

	for _, id := range []string{id1, id2} {
		if resp, err := http.Post(hs.URL+"/v1/jobs/"+id+"/cancel", "", nil); err == nil {
			resp.Body.Close()
		}
	}
	for _, id := range []string{id1, id2} {
		waitState(t, hs.URL, id, JobCancelled, JobDone)
	}
}

// TestTenantQuotaIsolation: one tenant exhausting its concurrency cap
// must not affect another tenant's admissions, and budget rejections
// carry the refill time as Retry-After.
func TestTenantQuotaIsolation(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(),
		Workers: 1, QueueDepth: 16, CheckpointEvery: -1,
		TenantJobs: 1, TenantTrialRate: 1e12, TenantTrialBurst: 1e12,
	})
	long := map[string]any{"graph": "fig1.graph", "method": "os", "trials": 2_000_000_000, "seed": 1}

	idA, _ := submitJob(t, hs.URL, "alice", long)
	if idA == "" {
		t.Fatal("alice's first job rejected")
	}
	id, resp := submitJob(t, hs.URL, "alice", long)
	if id != "" {
		t.Fatal("alice admitted past her concurrency cap")
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cap answer = HTTP %d, want 429", resp.StatusCode)
	}
	idB, _ := submitJob(t, hs.URL, "bob", long)
	if idB == "" {
		t.Fatal("bob's job rejected because of alice's saturation — tenant isolation broken")
	}

	for _, id := range []string{idA, idB} {
		if resp, err := http.Post(hs.URL+"/v1/jobs/"+id+"/cancel", "", nil); err == nil {
			resp.Body.Close()
		}
	}
	for _, id := range []string{idA, idB} {
		waitState(t, hs.URL, id, JobCancelled, JobDone)
	}
}

// TestTenantBudgetRetryAfter: an exhausted trial budget names the exact
// refill wait.
func TestTenantBudgetRetryAfter(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{
		GraphRoot: graphs, StateDir: t.TempDir(),
		Workers: 1, CheckpointEvery: -1,
		TenantJobs: 10, TenantTrialRate: 100, TenantTrialBurst: 25_000,
	})
	spec := map[string]any{"graph": "fig1.graph", "method": "os", "trials": 20_000, "seed": 1}
	id1, _ := submitJob(t, hs.URL, "carol", spec)
	if id1 == "" {
		t.Fatal("budgeted job rejected")
	}
	id2, resp := submitJob(t, hs.URL, "carol", spec)
	if id2 != "" {
		t.Fatal("job admitted past the trial budget")
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("budget answer = HTTP %d, want 429", resp.StatusCode)
	}
	// Shortfall ≈ 15k tokens at 100/s → ~150s.
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 100 || secs > 200 {
		t.Fatalf("Retry-After = %q, want ≈150s refill hint", resp.Header.Get("Retry-After"))
	}
	waitState(t, hs.URL, id1, JobDone)
}

// TestDrainSuspendRestartBitIdentical is the tentpole round trip: a
// running job is checkpoint-suspended by drain, a second server over the
// same state dir resumes it, and the finished result is bit-identical
// to an uninterrupted run.
func TestDrainSuspendRestartBitIdentical(t *testing.T) {
	graphs := t.TempDir()
	state := t.TempDir()
	g := buildMeshGraph(t, graphs, "mesh.graph")
	const trials = 400_000
	spec := map[string]any{"graph": "mesh.graph", "method": "os", "trials": trials, "seed": 42, "top_k": 5}

	// Reference: the same search, never interrupted.
	ref, err := mpmb.Search(g, mpmb.Options{Method: mpmb.MethodOS, Trials: trials, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	want := resultDocFrom("", JobSpec{TopK: 5}, ref)

	cfg := Config{
		GraphRoot: graphs, StateDir: state,
		Workers: 1, CheckpointEvery: 20 * time.Millisecond,
		DrainGrace: 30 * time.Millisecond, JournalEvents: true,
	}
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())

	id, _ := submitJob(t, hs1.URL, "", spec)
	if id == "" {
		t.Fatal("submission rejected")
	}
	// Wait for the first persisted checkpoint, so the suspension has a
	// prefix to resume (drain would checkpoint anyway; this derandomizes
	// the test).
	deadline := time.Now().Add(30 * time.Second)
	for {
		doc := jobStatus(t, hs1.URL, id)
		if doc.Checkpointed && doc.TrialsDone > 0 {
			break
		}
		if doc.State == JobDone {
			t.Fatal("job finished before drain could interrupt it; grow the fixture")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared; job state %q err %q", doc.State, doc.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), srv1.DrainBudget())
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if !srv1.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	doc := jobStatus(t, hs1.URL, id)
	if doc.State != JobSuspended {
		t.Fatalf("job %q after drain, want suspended (err %q)", doc.State, doc.Error)
	}
	if got := doc.TrialsDone; got <= 0 || got >= trials {
		t.Fatalf("suspended with trials_done = %d, want a strict prefix of %d", got, trials)
	}
	if _, err := os.Stat(filepath.Join(state, "checkpoints", id+".ckpt")); err != nil {
		t.Fatalf("no checkpoint on disk after drain: %v", err)
	}
	// Submissions during drain answer 503.
	if rid, resp := submitJob(t, hs1.URL, "", spec); rid != "" || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain admission = HTTP %d, want 503", resp.StatusCode)
	}
	hs1.Close()

	// Restart over the same state: the job must resume and finish.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer func() {
		hs2.Close()
		srv2.Close()
	}()
	doc = waitState(t, hs2.URL, id, JobDone, JobFailed)
	if doc.State != JobDone {
		t.Fatalf("resumed job failed: %s", doc.Error)
	}
	if !doc.Resumed {
		t.Fatal("finished job not marked as resumed")
	}

	resp, err := http.Get(hs2.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got resultDoc
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("resumed result still partial")
	}
	if got.Trials != trials {
		t.Fatalf("resumed result trials = %d, want %d", got.Trials, trials)
	}
	if len(got.Top) != len(want.Top) {
		t.Fatalf("%d top entries, want %d", len(got.Top), len(want.Top))
	}
	for i := range got.Top {
		if got.Top[i] != want.Top[i] {
			t.Fatalf("top[%d] = %+v, want %+v — suspend/resume broke bit-identity", i, got.Top[i], want.Top[i])
		}
	}
	// The journal survived both processes.
	if fi, err := os.Stat(filepath.Join(state, "events", id+".jsonl")); err != nil || fi.Size() == 0 {
		t.Fatalf("event journal missing or empty: %v", err)
	}
}

// TestShutdownLeaksNoGoroutines: a server that admitted, ran, cancelled
// and drained jobs must unwind every goroutine it started.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	before := runtime.NumGoroutine()

	srv, err := New(Config{
		GraphRoot: graphs, StateDir: t.TempDir(),
		Workers: 2, CheckpointEvery: -1, DrainGrace: 50 * time.Millisecond,
		TenantTrialRate: 1e12, TenantTrialBurst: 1e12, TenantJobs: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())

	idDone, _ := submitJob(t, hs.URL, "", map[string]any{"graph": "fig1.graph", "method": "os", "trials": 5000, "seed": 3})
	idLong, _ := submitJob(t, hs.URL, "", map[string]any{"graph": "fig1.graph", "method": "os", "trials": 2_000_000_000, "seed": 4})
	if idDone == "" || idLong == "" {
		t.Fatal("submissions rejected")
	}
	waitState(t, hs.URL, idDone, JobDone)
	if resp, err := http.Post(hs.URL+"/v1/jobs/"+idLong+"/cancel", "", nil); err == nil {
		resp.Body.Close()
	}
	waitState(t, hs.URL, idLong, JobCancelled)

	ctx, cancel := context.WithTimeout(context.Background(), srv.DrainBudget())
	err = srv.Drain(ctx)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	hs.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQuotaBookArithmetic pins the token-bucket math with a frozen
// clock.
func TestQuotaBookArithmetic(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newQuotaBook(2, 100, 1000)

	if err := b.admit("t", 800, now); err != nil {
		t.Fatal(err)
	}
	err := b.admit("t", 800, now)
	var qe *quotaError
	if err == nil {
		t.Fatal("overdraft admitted")
	}
	if ok := asQuotaError(err, &qe); !ok {
		t.Fatalf("err %T, want *quotaError", err)
	}
	// Shortfall 600 tokens at 100/s = 6s.
	if qe.retryAfter != 6*time.Second {
		t.Fatalf("retryAfter = %v, want 6s", qe.retryAfter)
	}
	// 6 seconds later the bucket refilled exactly enough.
	if err := b.admit("t", 800, now.Add(6*time.Second)); err != nil {
		t.Fatal(err)
	}
	// Concurrency cap: both slots taken.
	if err := b.admit("t", 1, now.Add(6*time.Second)); err == nil {
		t.Fatal("third concurrent job admitted past cap 2")
	}
	b.release("t")
	if err := b.admit("t", 0, now.Add(6*time.Second)); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
	// Refund restores tokens and the slot.
	b.refund("t", 800, now.Add(6*time.Second))
	if got := b.activeJobs("t"); got != 1 {
		t.Fatalf("active = %d after refund, want 1", got)
	}
}

func asQuotaError(err error, out **quotaError) bool {
	qe, ok := err.(*quotaError)
	if ok {
		*out = qe
	}
	return ok
}

// TestEventLogRing: the ring drops oldest, sequences expose the gap,
// close wakes followers.
func TestEventLogRing(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.append(mpmb.Event{N: int64(i)})
	}
	events, _, closed := l.since(0)
	if closed {
		t.Fatal("log closed prematurely")
	}
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	if events[0].Seq != 6 || events[3].Seq != 9 {
		t.Fatalf("ring range [%d,%d], want [6,9]", events[0].Seq, events[3].Seq)
	}
	_, wake, _ := l.since(10)
	done := make(chan struct{})
	go func() {
		<-wake
		close(done)
	}()
	l.close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("close did not wake the follower")
	}
	if _, _, closed := l.since(0); !closed {
		t.Fatal("closed log not reported closed")
	}
}

// TestValidateSpecRejections: admission validation runs before any
// quota is charged.
func TestValidateSpecRejections(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	_, hs := testServer(t, Config{GraphRoot: graphs, StateDir: t.TempDir(), MaxTrials: 50_000, CheckpointEvery: -1})

	for name, spec := range map[string]map[string]any{
		"escaping graph path": {"graph": "../fig1.graph", "trials": 1000},
		"absolute graph path": {"graph": "/etc/passwd", "trials": 1000},
		"missing graph":       {"graph": "nope.graph", "trials": 1000},
		"over max trials":     {"graph": "fig1.graph", "trials": 60_000},
		"negative trials":     {"graph": "fig1.graph", "trials": -1},
		"unknown method":      {"graph": "fig1.graph", "method": "bogus", "trials": 1000},
	} {
		id, resp := submitJob(t, hs.URL, "", spec)
		if id != "" {
			t.Fatalf("%s: accepted", name)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestGraphCacheSharing: two names with identical bytes share one
// Searcher; the LRU keeps the cache bounded.
func TestGraphCacheSharing(t *testing.T) {
	dir := t.TempDir()
	writeFigure1(t, dir, "a.graph")
	writeFigure1(t, dir, "b.graph")
	c := newGraphCache(dir, 4)
	ea, err := c.get(filepath.Join(dir, "a.graph"))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := c.get(filepath.Join(dir, "b.graph"))
	if err != nil {
		t.Fatal(err)
	}
	if ea.searcher != eb.searcher {
		t.Fatal("identical graph bytes under two names did not share a Searcher")
	}
	if _, err := c.get(filepath.Join(dir, "missing.graph")); err == nil {
		t.Fatal("missing graph loaded")
	}

	small := newGraphCache(dir, 1)
	if _, err := small.get(filepath.Join(dir, "a.graph")); err != nil {
		t.Fatal(err)
	}
	if _, err := small.get(filepath.Join(dir, "b.graph")); err != nil {
		t.Fatal(err)
	}
	small.mu.Lock()
	n := len(small.byPath)
	small.mu.Unlock()
	if n != 1 {
		t.Fatalf("cache holds %d entries past capacity 1", n)
	}
}

// TestRecoveryRequeuesQueuedJobs: jobs that never started also survive
// a restart.
func TestRecoveryRequeuesQueuedJobs(t *testing.T) {
	graphs := t.TempDir()
	state := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	cfg := Config{
		GraphRoot: graphs, StateDir: state,
		Workers: 1, CheckpointEvery: -1, DrainGrace: 20 * time.Millisecond,
		TenantTrialRate: 1e12, TenantTrialBurst: 1e12, TenantJobs: 10,
	}
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	long := map[string]any{"graph": "fig1.graph", "method": "os", "trials": 2_000_000_000, "seed": 1}
	quick := map[string]any{"graph": "fig1.graph", "method": "os", "trials": 5000, "seed": 2}
	idLong, _ := submitJob(t, hs1.URL, "", long)
	waitState(t, hs1.URL, idLong, JobRunning)
	idQuick, _ := submitJob(t, hs1.URL, "", quick)
	if idLong == "" || idQuick == "" {
		t.Fatal("submissions rejected")
	}
	ctx, cancel := context.WithTimeout(context.Background(), srv1.DrainBudget())
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	hs1.Close()
	if st := jobStatusManifest(t, state, idQuick); st != JobQueued {
		t.Fatalf("queued job persisted as %q, want queued", st)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer func() {
		hs2.Close()
		srv2.Close()
	}()
	// Recovery is submission-ordered: the long job re-occupies the single
	// worker first. Cancel it so the queued job can prove it survived.
	if resp, err := http.Post(hs2.URL+"/v1/jobs/"+idLong+"/cancel", "", nil); err == nil {
		resp.Body.Close()
	}
	waitState(t, hs2.URL, idLong, JobCancelled)
	waitState(t, hs2.URL, idQuick, JobDone)
}

func jobStatusManifest(t *testing.T, state, id string) JobState {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(state, "jobs", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m.State
}

// TestPanicIsolation: a job whose runner panics fails alone; the daemon
// keeps serving.
func TestPanicIsolation(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	srv, hs := testServer(t, Config{GraphRoot: graphs, StateDir: t.TempDir(), Workers: 1, CheckpointEvery: -1})

	// Inject a deterministic fault behind the shield via the test hook.
	testJobHook = func(j *Job) {
		if j.ID == "panic-test" {
			panic("injected fault")
		}
	}
	defer func() { testJobHook = nil }()

	j := newJob("panic-test", "t", JobSpec{Graph: "fig1.graph", Trials: 1000}, time.Now())
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic escaped the shield: %v", r)
			}
		}()
		srv.sched.runJob(j)
	}()
	if j.State() != JobFailed {
		t.Fatalf("panicked job in state %q, want failed", j.State())
	}
	if !strings.Contains(j.manifest().Error, "runner panic") {
		t.Fatalf("panic not recorded: %q", j.manifest().Error)
	}

	// The daemon still serves.
	id, _ := submitJob(t, hs.URL, "", map[string]any{"graph": "fig1.graph", "method": "os", "trials": 5000, "seed": 3})
	if id == "" {
		t.Fatal("daemon stopped admitting after a runner panic")
	}
	waitState(t, hs.URL, id, JobDone)
	if srv.stats.panics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", srv.stats.panics.Load())
	}
}

func TestMetricsAggregation(t *testing.T) {
	graphs := t.TempDir()
	writeFigure1(t, graphs, "fig1.graph")
	srv, hs := testServer(t, Config{GraphRoot: graphs, StateDir: t.TempDir(), CheckpointEvery: -1})
	for seed := 1; seed <= 2; seed++ {
		id, _ := submitJob(t, hs.URL, "", map[string]any{"graph": "fig1.graph", "method": "os", "trials": 5000, "seed": seed})
		if id == "" {
			t.Fatal("submission rejected")
		}
		waitState(t, hs.URL, id, JobDone)
	}
	agg := srv.aggregateMetrics()
	if agg.Trials != 10000 {
		t.Fatalf("aggregate trials = %d, want 10000", agg.Trials)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"mpmb_serve_jobs_submitted_total 2", "mpmb_serve_jobs_completed_total 2", "mpmb_serve_draining 0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
