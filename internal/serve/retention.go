package serve

import (
	"sort"
	"time"
)

// retentionLoop sweeps terminal jobs on the configured cadence until the
// daemon drains. Started by New when either retention knob is set.
func (s *Server) retentionLoop() {
	defer s.retainWG.Done()
	ticker := time.NewTicker(s.cfg.RetainSweep)
	defer ticker.Stop()
	for {
		select {
		case <-s.draining:
			return
		case <-ticker.C:
			s.sweepRetention(time.Now())
		}
	}
}

// sweepRetention applies the retention policy once: terminal jobs
// (done/failed/cancelled) older than RetainTTL are evicted, then the
// oldest-finished survivors beyond RetainMax. Eviction removes the
// job's whole on-disk footprint — result, manifest, event journal,
// leftover checkpoint — and drops it from the in-memory index, so
// status and result queries answer 404 afterwards. Queued, running and
// suspended jobs are never candidates, and a job is only evicted after
// its runner has fully finalized it (done channel closed), so a sweep
// can never race a finalize into resurrecting files it just deleted.
func (s *Server) sweepRetention(now time.Time) {
	type aged struct {
		job *Job
		at  time.Time
	}
	var terminal []aged
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		ok := j.state.terminal()
		at := j.finished
		j.mu.Unlock()
		if !ok {
			continue
		}
		select {
		case <-j.done:
		default:
			continue // finalize still in flight
		}
		if at.IsZero() {
			// Terminal jobs loaded from a pre-Finished manifest: age by
			// submission so they still expire.
			at = j.Submitted
		}
		terminal = append(terminal, aged{job: j, at: at})
	}
	s.mu.Unlock()

	sort.Slice(terminal, func(i, k int) bool { return terminal[i].at.Before(terminal[k].at) })

	evict := make(map[*Job]bool)
	if ttl := s.cfg.RetainTTL; ttl > 0 {
		for _, a := range terminal {
			if now.Sub(a.at) > ttl {
				evict[a.job] = true
			}
		}
	}
	if max := s.cfg.RetainMax; max > 0 {
		keep := 0
		for i := len(terminal) - 1; i >= 0; i-- { // newest first
			if evict[terminal[i].job] {
				continue
			}
			keep++
			if keep > max {
				evict[terminal[i].job] = true
			}
		}
	}
	for _, a := range terminal {
		if evict[a.job] {
			s.evictJob(a.job)
		}
	}
}

// evictJob removes one terminal job's memory and disk footprint.
func (s *Server) evictJob(j *Job) {
	s.mu.Lock()
	delete(s.jobs, j.ID)
	s.mu.Unlock()
	s.store.removeResult(j.ID)
	s.store.removeManifest(j.ID)
	s.store.removeCheckpoint(j.ID)
	s.store.removeJournal(j.ID)
	s.stats.evicted.Add(1)
}
