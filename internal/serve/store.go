package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// stateStore is the daemon's durable layout under Config.StateDir:
//
//	jobs/<id>.json         job manifest (atomic JSON, the recovery root)
//	checkpoints/<id>.ckpt  engine checkpoint (retrying CheckpointStore)
//	results/<id>.json      finished result document (atomic JSON)
//	events/<id>.jsonl      telemetry event journal (when enabled)
//
// Manifests and results are written temp-file-then-rename so a crash at
// any instant leaves either the old bytes or the new bytes, never a torn
// file. Checkpoints go through core.CheckpointStore, which adds retry
// with exponential backoff on top of the same atomic protocol.
type stateStore struct {
	dir  string
	ckpt *core.CheckpointStore
}

func newStateStore(dir string) (*stateStore, error) {
	for _, sub := range []string{"jobs", "checkpoints", "results", "events"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating state dir: %w", err)
		}
	}
	return &stateStore{dir: dir, ckpt: core.NewCheckpointStore(core.DefaultRetryPolicy())}, nil
}

func (st *stateStore) manifestPath(id string) string {
	return filepath.Join(st.dir, "jobs", id+".json")
}
func (st *stateStore) checkpointPath(id string) string {
	return filepath.Join(st.dir, "checkpoints", id+".ckpt")
}
func (st *stateStore) resultPath(id string) string {
	return filepath.Join(st.dir, "results", id+".json")
}
func (st *stateStore) journalPath(id string) string {
	return filepath.Join(st.dir, "events", id+".jsonl")
}

// writeAtomic lands data at path via a same-directory temp file and
// rename, so readers (and crash recovery) never observe a partial write.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (st *stateStore) saveManifest(m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding manifest %s: %w", m.ID, err)
	}
	if err := writeAtomic(st.manifestPath(m.ID), data); err != nil {
		return fmt.Errorf("serve: persisting manifest %s: %w", m.ID, err)
	}
	return nil
}

// removeManifest erases a job that was rejected after its manifest was
// written (queue-full race); rejected work leaves no recovery residue.
func (st *stateStore) removeManifest(id string) {
	os.Remove(st.manifestPath(id))
}

// loadManifests reads every persisted job, skipping files that do not
// parse (a torn write is impossible by construction, so a bad file is
// foreign — better to serve the rest than refuse to start).
func (st *stateStore) loadManifests() ([]manifest, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serve: reading job manifests: %w", err)
	}
	var out []manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, "jobs", e.Name()))
		if err != nil {
			return nil, fmt.Errorf("serve: reading manifest %s: %w", e.Name(), err)
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.ID == "" {
			continue
		}
		out = append(out, m)
	}
	return out, nil
}

// saveCheckpoint persists a job's engine checkpoint through the
// retrying store.
func (st *stateStore) saveCheckpoint(id string, ck *core.Checkpoint) error {
	return st.ckpt.Save(st.checkpointPath(id), ck)
}

// loadCheckpoint returns the job's checkpoint, or (nil, nil) when none
// exists — absence is the common case, not an error worth retrying.
func (st *stateStore) loadCheckpoint(id string) (*core.Checkpoint, error) {
	path := st.checkpointPath(id)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return st.ckpt.Load(path)
}

func (st *stateStore) removeCheckpoint(id string) {
	os.Remove(st.checkpointPath(id))
}

func (st *stateStore) saveResult(doc resultDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding result %s: %w", doc.ID, err)
	}
	if err := writeAtomic(st.resultPath(doc.ID), data); err != nil {
		return fmt.Errorf("serve: persisting result %s: %w", doc.ID, err)
	}
	return nil
}

// removeResult and removeJournal erase a retired job's result document
// and event journal during retention eviction.
func (st *stateStore) removeResult(id string) {
	os.Remove(st.resultPath(id))
}

func (st *stateStore) removeJournal(id string) {
	os.Remove(st.journalPath(id))
}

// loadResult returns the persisted result document bytes, or
// (nil, nil) when none exists.
func (st *stateStore) loadResult(id string) ([]byte, error) {
	data, err := os.ReadFile(st.resultPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}
