package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// serveStats are the daemon's own health counters, exposed at /metrics
// alongside the aggregated engine telemetry.
type serveStats struct {
	submitted     atomic.Int64 // jobs admitted into the queue
	rejectedQueue atomic.Int64 // 429s from a full admission queue
	rejectedQuota atomic.Int64 // 429s from tenant quota/budget
	completed     atomic.Int64 // jobs finishing with a full result
	failed        atomic.Int64 // jobs ending in error
	cancelled     atomic.Int64 // client cancellations honoured
	suspended     atomic.Int64 // jobs checkpoint-parked by drain
	recovered     atomic.Int64 // jobs re-admitted from disk at startup
	panics        atomic.Int64 // runner panics caught by the shield
	checkpoints   atomic.Int64 // periodic+drain checkpoints saved
	evicted       atomic.Int64 // terminal jobs removed by retention
	distFallbacks atomic.Int64 // dist jobs degraded to the local fallback
}

// aggregateMetrics merges every job's telemetry into one daemon-wide
// snapshot: counters and histograms sum (they are per-job monotone),
// Workers reports the widest run seen.
func (s *Server) aggregateMetrics() telemetry.Metrics {
	var agg telemetry.Metrics
	for _, j := range s.snapshotJobs() {
		m := j.liveMetrics()
		if m == nil {
			continue
		}
		if m.Workers > agg.Workers {
			agg.Workers = m.Workers
		}
		agg.Trials += m.Trials
		agg.TrialHits += m.TrialHits
		agg.PrepTrials += m.PrepTrials
		agg.EdgesScanned += m.EdgesScanned
		agg.EdgesPruned += m.EdgesPruned
		agg.CandScanned += m.CandScanned
		agg.CandPruned += m.CandPruned
		agg.Candidates += m.Candidates
		agg.Audits += m.Audits
		agg.AuditMisses += m.AuditMisses
		agg.Escalations += m.Escalations
		agg.CheckpointSaves += m.CheckpointSaves
		agg.CheckpointRetries += m.CheckpointRetries
		agg.DistLeaseErrors += m.DistLeaseErrors
		agg.DistCompleteErrors += m.DistCompleteErrors
		agg.DistGraphErrors += m.DistGraphErrors
		agg.DistExecErrors += m.DistExecErrors
		agg.DistReconnects += m.DistReconnects
		agg.EventsDropped += m.EventsDropped
		agg.TrialNs.SumNs += m.TrialNs.SumNs
		agg.TrialNs.Count += m.TrialNs.Count
		for len(agg.TrialNs.Counts) < len(m.TrialNs.Counts) {
			agg.TrialNs.Counts = append(agg.TrialNs.Counts, 0)
		}
		for i, c := range m.TrialNs.Counts {
			agg.TrialNs.Counts[i] += c
		}
	}
	return agg
}

// metricsHandler serves the Prometheus text exposition: the daemon's
// own lifecycle counters first, then the aggregated engine telemetry.
func (s *Server) metricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		st := s.stats
		for _, c := range []struct {
			name, help string
			v          int64
		}{
			{"mpmb_serve_jobs_submitted_total", "Jobs admitted into the queue.", st.submitted.Load()},
			{"mpmb_serve_jobs_rejected_queue_total", "Submissions rejected by a full admission queue.", st.rejectedQueue.Load()},
			{"mpmb_serve_jobs_rejected_quota_total", "Submissions rejected by tenant quotas.", st.rejectedQuota.Load()},
			{"mpmb_serve_jobs_completed_total", "Jobs finishing with a full result.", st.completed.Load()},
			{"mpmb_serve_jobs_failed_total", "Jobs ending in error.", st.failed.Load()},
			{"mpmb_serve_jobs_cancelled_total", "Client cancellations honoured.", st.cancelled.Load()},
			{"mpmb_serve_jobs_suspended_total", "Jobs checkpoint-parked by drain.", st.suspended.Load()},
			{"mpmb_serve_jobs_recovered_total", "Jobs re-admitted from disk at startup.", st.recovered.Load()},
			{"mpmb_serve_runner_panics_total", "Runner panics caught by the isolation shield.", st.panics.Load()},
			{"mpmb_serve_checkpoints_total", "Job checkpoints saved (periodic and drain).", st.checkpoints.Load()},
			{"mpmb_serve_jobs_evicted_total", "Terminal jobs removed by retention.", st.evicted.Load()},
			{"mpmb_serve_dist_fallbacks_total", "Distributed jobs degraded to the in-process fallback.", st.distFallbacks.Load()},
		} {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
		}
		draining := 0
		if s.Draining() {
			draining = 1
		}
		fmt.Fprintf(w, "# HELP mpmb_serve_draining Whether admission has stopped.\n# TYPE mpmb_serve_draining gauge\nmpmb_serve_draining %d\n", draining)
		telemetry.WritePrometheus(w, s.aggregateMetrics())
	})
}
