package serve

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// quotaError is an admission rejection with a client-facing retry hint.
type quotaError struct {
	msg        string
	retryAfter time.Duration
}

func (e *quotaError) Error() string { return e.msg }

// tenantQuota is one tenant's admission state: the active-job count
// (queued + running) against the concurrency cap, and a token bucket of
// trial budget refilled continuously.
type tenantQuota struct {
	active int
	tokens float64
	last   time.Time
}

// quotaBook enforces per-tenant admission limits. All methods are safe
// for concurrent use; time flows through the caller so tests can pin it.
type quotaBook struct {
	jobs  int     // concurrency cap per tenant
	rate  float64 // tokens/second refill
	burst float64 // bucket capacity

	mu      sync.Mutex
	tenants map[string]*tenantQuota
}

func newQuotaBook(jobs int, rate, burst float64) *quotaBook {
	return &quotaBook{jobs: jobs, rate: rate, burst: burst, tenants: make(map[string]*tenantQuota)}
}

// tenant returns the bucket, creating a full one on first sight.
func (b *quotaBook) tenant(name string, now time.Time) *tenantQuota {
	t, ok := b.tenants[name]
	if !ok {
		t = &tenantQuota{tokens: b.burst, last: now}
		b.tenants[name] = t
	}
	return t
}

// refill advances the bucket to now.
func (b *quotaBook) refill(t *tenantQuota, now time.Time) {
	dt := now.Sub(t.last).Seconds()
	if dt > 0 {
		t.tokens = math.Min(b.burst, t.tokens+dt*b.rate)
		t.last = now
	}
}

// admit charges one job of the given trial cost against the tenant.
// A *quotaError carries the Retry-After hint: for an exhausted trial
// budget it is the exact refill time of the shortfall; for a saturated
// concurrency cap there is no budget arithmetic to predict, so the hint
// is a fixed short backoff.
func (b *quotaBook) admit(name string, cost float64, now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tenant(name, now)
	b.refill(t, now)
	if t.active >= b.jobs {
		return &quotaError{
			msg:        fmt.Sprintf("tenant %q already has %d active jobs (cap %d)", name, t.active, b.jobs),
			retryAfter: time.Second,
		}
	}
	if t.tokens < cost {
		wait := time.Duration((cost - t.tokens) / b.rate * float64(time.Second))
		return &quotaError{
			msg:        fmt.Sprintf("tenant %q trial budget exhausted: need %.0f tokens, have %.0f", name, cost, t.tokens),
			retryAfter: wait,
		}
	}
	t.tokens -= cost
	t.active++
	return nil
}

// refund undoes an admit whose job never entered the queue (queue full):
// both the concurrency slot and the trial tokens come back.
func (b *quotaBook) refund(name string, cost float64, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tenant(name, now)
	b.refill(t, now)
	t.tokens = math.Min(b.burst, t.tokens+cost)
	if t.active > 0 {
		t.active--
	}
}

// release frees the concurrency slot when a job reaches a terminal
// state. The trial tokens stay spent — the work was done (or reserved).
func (b *quotaBook) release(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.tenants[name]; ok && t.active > 0 {
		t.active--
	}
}

// recoverActive re-occupies a concurrency slot for a job re-admitted
// from disk after a restart. The trial budget was charged at original
// admission and is not charged again (restart resets buckets to full,
// which errs on the side of accepting work the daemon already owes).
func (b *quotaBook) recoverActive(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tenant(name, time.Now()).active++
}

// activeJobs reports a tenant's occupied concurrency slots.
func (b *quotaBook) activeJobs(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.tenants[name]; ok {
		return t.active
	}
	return 0
}
