// Package profiling wires the standard runtime/pprof CPU and heap
// profiles into the command-line tools. Both mpmb-search and mpmb-bench
// accept -cpuprofile / -memprofile flags and route them here, so a slow
// search or benchmark run can be inspected with `go tool pprof` without
// rebuilding anything.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two flag values (either may be
// empty) and returns a stop function that must be called exactly once at
// process end: it stops the CPU profile and writes the heap profile.
//
// The heap profile is captured at stop time after a forced GC, so it
// reflects live allocations at the end of the run — the number that
// matters for "does the kernel hold onto memory" questions — rather than
// a mid-run transient.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop = func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("profiling: create mem profile: %w", err)
				}
				return first
			}
			runtime.GC() // materialize the live set before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("profiling: write mem profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiling: close mem profile: %w", err)
			}
		}
		return first
	}
	return stop, nil
}
