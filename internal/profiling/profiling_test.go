package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartDisabled: with both paths empty Start is a no-op whose stop
// function succeeds — the common case for every un-profiled CLI run.
func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartWritesProfiles: both profile files must exist and be
// non-empty after stop. The heap profile is written at stop time, so a
// zero-length file would mean the deferred half never ran.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.out"), filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestStartErrors: unwritable profile paths fail up front, not at stop.
func TestStartErrors(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("want error for unwritable cpu profile path")
	}
	// A bad mem path surfaces from stop (the file is only created then).
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.out"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("want error for unwritable mem profile path")
	}
}
