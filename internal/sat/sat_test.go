package sat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

func TestEvalAndCount(t *testing.T) {
	// F = (y1 ∨ y2) ∧ (y2 ∨ y3): models over 3 vars.
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, 2}, {2, 3}}}
	// Enumerate by hand: y2=1 → 4 models; y2=0 needs y1=1 and y3=1 → 1.
	n, err := f.CountSatisfying()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("#SAT = %d, want 5", n)
	}
}

func TestCountEmptyFormula(t *testing.T) {
	f := &Formula{NumVars: 3}
	n, err := f.CountSatisfying()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("#SAT of empty formula = %d, want 2^3", n)
	}
}

func TestValidateRejectsBadLiterals(t *testing.T) {
	for _, f := range []*Formula{
		{NumVars: 2, Clauses: []Clause{{0, 1}}},
		{NumVars: 2, Clauses: []Clause{{1, 3}}},
		{NumVars: -1},
	} {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", f)
		}
	}
}

func TestCountRefusesLargeFormulas(t *testing.T) {
	f := &Formula{NumVars: 30}
	if _, err := f.CountSatisfying(); err == nil {
		t.Fatal("CountSatisfying accepted 30 variables")
	}
}

// TestGadgetShape validates the structural properties of the reduction:
// edge counts, probabilities, weights and the target butterfly.
func TestGadgetShape(t *testing.T) {
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, 2}, {2, 3}, {1, 1}}}
	g, err := BuildGadget(f)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: 3 variable + 2·2 two-literal clause + 2 single-literal
	// clause + 1 constant (u0,v0) + 4 target = 14.
	if got := g.G.NumEdges(); got != 14 {
		t.Fatalf("gadget has %d edges, want 14", got)
	}
	if g.G.NumL() != 6 || g.G.NumR() != 6 {
		t.Fatalf("gadget partitions %d×%d, want 6×6", g.G.NumL(), g.G.NumR())
	}
	w, ok := g.Target.Weight(g.G)
	if !ok || w != 2 {
		t.Fatalf("target weight = %v (%v), want 2", w, ok)
	}
	pr, _ := g.Target.ExistProb(g.G)
	if pr != 1 {
		t.Fatalf("target existence probability = %v, want 1", pr)
	}
	for i, id := range g.VarEdges {
		e := g.G.Edge(id)
		if e.P != 0.5 || e.W != 1 {
			t.Fatalf("variable edge %d has (w=%v, p=%v), want (1, 0.5)", i, e.W, e.P)
		}
	}
}

// TestReductionMatchesModelCount is the executable Lemma III.1: on sound
// formulas, the exact MPMB probability of the target butterfly equals
// #SAT / 2ⁿ.
func TestReductionMatchesModelCount(t *testing.T) {
	formulas := []*Formula{
		{NumVars: 2, Clauses: []Clause{{1, 2}}},
		{NumVars: 3, Clauses: []Clause{{1, 2}, {2, 3}}},
		{NumVars: 2, Clauses: []Clause{{1, 1}}},
		{NumVars: 4, Clauses: []Clause{{1, 2}, {3, 4}}},
		{NumVars: 4, Clauses: []Clause{{1, 4}, {2, 3}, {1, 3}}},
		{NumVars: 2, Clauses: nil},
	}
	for _, f := range formulas {
		g, err := BuildGadget(f)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Sound() {
			t.Fatalf("expected sound gadget for %+v", f)
		}
		count, err := f.CountSatisfying()
		if err != nil {
			t.Fatal(err)
		}
		want := float64(count) / math.Pow(2, float64(f.NumVars))
		got, err := core.ExactProb(g.G, g.Target)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("formula %+v: P(Target) = %v, #SAT/2ⁿ = %v", f, got, want)
		}
	}
}

// TestReductionRandomSoundFormulas extends the identity check to random
// formulas via testing/quick, skipping (but tallying) unsound gadgets.
func TestReductionRandomSoundFormulas(t *testing.T) {
	sound, unsound := 0, 0
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 2 + r.Intn(3) // 2..4
		nClauses := r.Intn(4)  // 0..3
		f := &Formula{NumVars: nVars}
		for i := 0; i < nClauses; i++ {
			a := 1 + r.Intn(nVars)
			b := 1 + r.Intn(nVars)
			f.Clauses = append(f.Clauses, Clause{A: a, B: b})
		}
		g, err := BuildGadget(f)
		if err != nil {
			return false
		}
		if !g.Sound() {
			unsound++
			return true
		}
		sound++
		count, err := f.CountSatisfying()
		if err != nil {
			return false
		}
		want := float64(count) / math.Pow(2, float64(nVars))
		got, err := core.ExactProb(g.G, g.Target)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if sound == 0 {
		t.Fatal("no sound gadget was generated; test is vacuous")
	}
	t.Logf("verified %d sound gadgets (%d unsound skipped)", sound, unsound)
}

// TestUnsoundPatternsDetected builds the two clause patterns that create
// unintended heavy butterflies and checks Sound flags both — and that
// P(Target) indeed deviates from #SAT/2ⁿ there, confirming the necessity
// of the soundness condition.
func TestUnsoundPatternsDetected(t *testing.T) {
	t.Run("certain butterfly from a clause 4-cycle", func(t *testing.T) {
		f := &Formula{NumVars: 4, Clauses: []Clause{{1, 2}, {1, 3}, {4, 2}, {4, 3}}}
		g, err := BuildGadget(f)
		if err != nil {
			t.Fatal(err)
		}
		if g.Sound() {
			t.Fatal("Sound() missed the certain weight-4 butterfly pattern")
		}
		got, err := core.ExactProb(g.G, g.Target)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("P(Target) = %v on unsound gadget, want 0", got)
		}
		count, _ := f.CountSatisfying()
		if count == 0 {
			t.Fatal("formula unexpectedly unsatisfiable; test loses its point")
		}
	})

	t.Run("mixed butterfly from a clause triangle", func(t *testing.T) {
		f := &Formula{NumVars: 3, Clauses: []Clause{{1, 2}, {2, 3}, {1, 3}}}
		g, err := BuildGadget(f)
		if err != nil {
			t.Fatal(err)
		}
		if g.Sound() {
			t.Fatal("Sound() missed the mixed weight-4 butterfly pattern")
		}
		got, err := core.ExactProb(g.G, g.Target)
		if err != nil {
			t.Fatal(err)
		}
		count, _ := f.CountSatisfying()
		want := float64(count) / 8
		if math.Abs(got-want) < 1e-9 {
			t.Fatalf("triangle gadget unexpectedly satisfies the identity (P=%v)", got)
		}
		// The actual value: the target is maximum only when every
		// variable edge is absent (any present variable edge completes a
		// mixed butterfly through the triangle's clause edges).
		if math.Abs(got-0.125) > 1e-9 {
			t.Fatalf("P(Target) = %v, want 1/8", got)
		}
	})
}
