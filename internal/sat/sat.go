// Package sat implements Monotone #2-SAT counting and the paper's
// reduction from it to MPMB probability computation (Lemma III.1),
// providing an executable form of the #P-hardness proof.
//
// A Monotone 2-SAT formula is a conjunction of clauses, each the
// disjunction of two positive literals. Counting its satisfying
// assignments is #P-hard; Lemma III.1 maps a formula F over n variables to
// an uncertain bipartite weighted gadget graph G_# and a distinguished
// butterfly B such that
//
//	P(B) = |{x : F(x)=1}| / 2ⁿ
//
// so computing P(B) exactly would count models.
//
// Two corrections to the paper's construction, discovered while executing
// it (documented in DESIGN.md):
//
//  1. For a single-literal clause (y_a ∨ y_a) the paper adds the edges
//     (u_a, v_0) and (u_0, v_a) but the corresponding violation butterfly
//     B(u_0,u_a | v_0,v_a) also needs the edge (u_0, v_0); BuildGadget
//     adds it (probability 1, weight 1) whenever such a clause exists.
//  2. Clause edges from different clauses can accidentally close
//     unintended heavy butterflies — a certain one from a clause 4-cycle
//     such as (a∨b),(a∨c),(d∨b),(d∨c), or a mixed one (three clause edges
//     plus one variable edge) from a clause triangle such as
//     (a∨b),(b∨c),(a∨c). Either distorts P(B) away from #SAT/2ⁿ. Sound
//     reports whether a formula avoids this (see its doc comment for the
//     exact condition); the identity is validated on sound instances.
package sat

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// Clause is a disjunction of two positive literals over 1-based variable
// indices; A == B denotes the single-literal clause (y_A).
type Clause struct {
	A, B int
}

// Formula is a Monotone 2-SAT formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks variable indices.
func (f *Formula) Validate() error {
	if f.NumVars < 0 {
		return fmt.Errorf("sat: negative variable count %d", f.NumVars)
	}
	for i, c := range f.Clauses {
		if c.A < 1 || c.A > f.NumVars || c.B < 1 || c.B > f.NumVars {
			return fmt.Errorf("sat: clause %d literals (%d,%d) outside 1..%d", i, c.A, c.B, f.NumVars)
		}
	}
	return nil
}

// Eval evaluates the formula under the assignment (1-based: assignment[i]
// is the value of y_{i+1}).
func (f *Formula) Eval(assignment []bool) bool {
	for _, c := range f.Clauses {
		if !assignment[c.A-1] && !assignment[c.B-1] {
			return false
		}
	}
	return true
}

// maxCountVars bounds brute-force counting.
const maxCountVars = 24

// CountSatisfying counts the formula's models by brute force, limited to
// maxCountVars variables.
func (f *Formula) CountSatisfying() (uint64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if f.NumVars > maxCountVars {
		return 0, fmt.Errorf("sat: refusing to enumerate 2^%d assignments (limit 2^%d)", f.NumVars, maxCountVars)
	}
	assignment := make([]bool, f.NumVars)
	var count uint64
	for mask := uint64(0); mask < 1<<f.NumVars; mask++ {
		for i := range assignment {
			assignment[i] = mask&(1<<i) != 0
		}
		if f.Eval(assignment) {
			count++
		}
	}
	return count, nil
}

// Gadget is the output of the Lemma III.1 reduction.
type Gadget struct {
	// G is the uncertain bipartite gadget graph. Left vertex i and right
	// vertex i (0 ≤ i ≤ n) play the roles of u_i and v_i; vertices n+1
	// and n+2 on each side carry the target butterfly.
	G *bigraph.Graph
	// Target is B(u_{n+1}, u_{n+2} | v_{n+1}, v_{n+2}), the butterfly
	// whose maximality probability equals #SAT/2ⁿ.
	Target butterfly.Butterfly
	// VarEdges[i] is the edge id of (u_{i+1}, v_{i+1}), the uncertain
	// edge encoding variable y_{i+1}: y is TRUE iff the edge is ABSENT.
	VarEdges []bigraph.EdgeID

	formula *Formula
}

// BuildGadget constructs the reduction gadget for f.
func BuildGadget(f *Formula) (*Gadget, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	n := f.NumVars
	b := bigraph.NewBuilder(n+3, n+3)
	added := make(map[[2]int]bool)
	addOnce := func(u, v int, w, p float64) error {
		k := [2]int{u, v}
		if added[k] {
			return nil
		}
		added[k] = true
		return b.AddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, p)
	}

	// (i) variable edges (u_i, v_i), p = 0.5, w = 1.
	varEdges := make([]bigraph.EdgeID, n)
	for i := 1; i <= n; i++ {
		varEdges[i-1] = bigraph.EdgeID(b.NumEdges())
		if err := addOnce(i, i, 1, 0.5); err != nil {
			return nil, err
		}
	}
	// (ii)/(iii) clause edges, p = 1, w = 1.
	needConst := false
	for _, c := range f.Clauses {
		if c.A != c.B {
			if err := addOnce(c.A, c.B, 1, 1); err != nil {
				return nil, err
			}
			if err := addOnce(c.B, c.A, 1, 1); err != nil {
				return nil, err
			}
		} else {
			needConst = true
			if err := addOnce(c.A, 0, 1, 1); err != nil {
				return nil, err
			}
			if err := addOnce(0, c.A, 1, 1); err != nil {
				return nil, err
			}
		}
	}
	if needConst {
		// Correction 1: close the single-literal violation butterflies.
		if err := addOnce(0, 0, 1, 1); err != nil {
			return nil, err
		}
	}
	// (iv) the independent target butterfly, p = 1, w = 0.5 per edge.
	for _, uv := range [][2]int{{n + 1, n + 1}, {n + 1, n + 2}, {n + 2, n + 1}, {n + 2, n + 2}} {
		if err := addOnce(uv[0], uv[1], 0.5, 1); err != nil {
			return nil, err
		}
	}

	return &Gadget{
		G:        b.Build(),
		Target:   butterfly.New(bigraph.VertexID(n+1), bigraph.VertexID(n+2), bigraph.VertexID(n+1), bigraph.VertexID(n+2)),
		VarEdges: varEdges,
		formula:  f,
	}, nil
}

// Sound reports whether the gadget satisfies the reduction's implicit
// soundness condition, which the paper's proof leaves unstated.
//
// In any possible world, a butterfly heavier than the target (weight 4 vs
// 2) exists iff all of its uncertain (variable) edges are present, since
// every clause edge is certain. Writing U(B) for the set of variables
// whose edge (u_i, v_i) belongs to B, a heavy butterfly B exists in the
// world of assignment x iff every variable in U(B) is false. The intended
// heavy butterflies are the clause-violation ones with U(B) = {a, b}; the
// identity P(Target) = #SAT/2ⁿ survives extra heavy butterflies only when
// each one's U(B) contains both literals of some clause — then its
// existence already implies a violated clause and adds no new "bad"
// worlds. Clause patterns such as {(a∨b),(a∨c),(d∨b),(d∨c)} (a certain
// butterfly, U = ∅) or clause triangles {(a∨b),(b∨c),(a∨c)} (a mixed
// butterfly with U = {b}) violate the condition and collapse or distort
// P(Target).
func (g *Gadget) Sound() bool {
	f := g.formula
	isVar := make(map[bigraph.EdgeID]int, len(g.VarEdges))
	for i, id := range g.VarEdges {
		isVar[id] = i + 1 // 1-based variable index
	}
	for _, bw := range butterfly.AllBackbone(g.G) {
		if bw.B == g.Target || bw.W <= 2 {
			continue
		}
		ids, ok := bw.B.EdgeIDs(g.G)
		if !ok {
			continue
		}
		var u []int
		for _, id := range ids {
			if v, isV := isVar[id]; isV {
				u = append(u, v)
			}
		}
		covered := false
		for _, c := range f.Clauses {
			hasA, hasB := false, false
			for _, v := range u {
				if v == c.A {
					hasA = true
				}
				if v == c.B {
					hasB = true
				}
			}
			if hasA && hasB {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
