// Package chaos injects deterministic network faults under the
// distributed runtime's tests: an http.RoundTripper (and an in-process
// reverse proxy built on it) that applies a seeded fault schedule —
// added latency, dropped requests, dropped responses, synthetic 5xx
// bursts, and timed partitions — between a dist worker and its
// coordinator.
//
// Determinism is the point: every fault decision is drawn from a
// seeded randx stream, so a failing chaos run reproduces exactly from
// its schedule seed. The nastiest case for an idempotency story —
// "request applied but reply lost" — is modeled faithfully: the
// request is forwarded and the server processes it, then the reply is
// discarded and the client sees a transport error.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// ErrInjected marks every fault this package injects. Transports
// treating it like any other network error is exactly the test: no
// code outside this package should special-case it.
var ErrInjected = errors.New("chaos: injected fault")

// faultError wraps one injected fault with its kind for debugging.
type faultError struct{ kind string }

func (e *faultError) Error() string   { return "chaos: injected " + e.kind }
func (e *faultError) Is(t error) bool { return t == ErrInjected }

// Window is one timed partition, relative to the transport's first
// request: every request issued in [From, Until) fails without
// reaching the server.
type Window struct {
	From  time.Duration
	Until time.Duration
}

// Schedule is a seeded fault plan. Probabilities are per-request and
// independent; zero values inject nothing of that class.
type Schedule struct {
	// Seed drives every fault decision (and latency draw).
	Seed uint64
	// LatencyP adds a uniform [LatencyMin, LatencyMax] delay before
	// forwarding, with probability LatencyP.
	LatencyP   float64
	LatencyMin time.Duration
	LatencyMax time.Duration
	// DropRequestP drops the request before it reaches the server: the
	// server never sees it, the client gets an error.
	DropRequestP float64
	// DropResponseP forwards the request — the server fully applies it
	// — then discards the reply: the client gets an error for work
	// that HAPPENED. Retries must therefore be idempotent.
	DropResponseP float64
	// Err5xxP short-circuits with a synthetic 503 (an overloaded
	// intermediary), without forwarding.
	Err5xxP float64
	// Partitions are timed windows (relative to the first request)
	// during which every request fails unforwarded.
	Partitions []Window
}

// Stats counts injected faults, for test vacuity checks ("did this
// schedule actually bite?").
type Stats struct {
	Requests         int64
	Delayed          int64
	DroppedRequests  int64
	DroppedResponses int64
	Synth5xx         int64
	PartitionDrops   int64
}

// Transport is a fault-injecting http.RoundTripper. Construct with
// NewTransport; safe for concurrent use.
type Transport struct {
	// Base is the real transport faults are layered over (nil =
	// http.DefaultTransport).
	Base http.RoundTripper

	sched Schedule

	mu    sync.Mutex
	rng   *randx.RNG
	start time.Time

	requests         atomic.Int64
	delayed          atomic.Int64
	droppedRequests  atomic.Int64
	droppedResponses atomic.Int64
	synth5xx         atomic.Int64
	partitionDrops   atomic.Int64
}

// NewTransport returns a transport applying s over the default base.
func NewTransport(s Schedule) *Transport {
	return &Transport{sched: s, rng: randx.New(s.Seed)}
}

// Stats snapshots the injected-fault counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:         t.requests.Load(),
		Delayed:          t.delayed.Load(),
		DroppedRequests:  t.droppedRequests.Load(),
		DroppedResponses: t.droppedResponses.Load(),
		Synth5xx:         t.synth5xx.Load(),
		PartitionDrops:   t.partitionDrops.Load(),
	}
}

// decision is one request's drawn fate.
type decision struct {
	partition    bool
	dropRequest  bool
	dropResponse bool
	err5xx       bool
	delay        time.Duration
}

// decide draws one request's fate from the seeded stream. All draws
// happen under the lock in a fixed order, so for a serial client the
// fault sequence is a pure function of the seed.
func (t *Transport) decide() decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	if t.start.IsZero() {
		t.start = now
	}
	var d decision
	since := now.Sub(t.start)
	for _, w := range t.sched.Partitions {
		if since >= w.From && since < w.Until {
			d.partition = true
		}
	}
	s := t.sched
	if s.LatencyP > 0 && t.rng.Float64() < s.LatencyP {
		spread := float64(s.LatencyMax - s.LatencyMin)
		if spread < 0 {
			spread = 0
		}
		d.delay = s.LatencyMin + time.Duration(t.rng.Float64()*spread)
	}
	if s.DropRequestP > 0 && t.rng.Float64() < s.DropRequestP {
		d.dropRequest = true
	}
	if s.DropResponseP > 0 && t.rng.Float64() < s.DropResponseP {
		d.dropResponse = true
	}
	if s.Err5xxP > 0 && t.rng.Float64() < s.Err5xxP {
		d.err5xx = true
	}
	return d
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper with the schedule applied.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	d := t.decide()
	if d.partition {
		t.partitionDrops.Add(1)
		return nil, &faultError{kind: "partition"}
	}
	if d.delay > 0 {
		t.delayed.Add(1)
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.delay):
		}
	}
	if d.dropRequest {
		t.droppedRequests.Add(1)
		return nil, &faultError{kind: "dropped request"}
	}
	if d.err5xx {
		t.synth5xx.Add(1)
		return synthetic503(req), nil
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.dropResponse {
		// The server has fully processed the request; make sure the
		// reply is consumed so the connection is reusable, then lose it.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.droppedResponses.Add(1)
		return nil, &faultError{kind: "dropped response"}
	}
	return resp, nil
}

// synthetic503 builds the injected intermediary-overload reply.
func synthetic503(req *http.Request) *http.Response {
	return &http.Response{
		Status:     fmt.Sprintf("%d %s", http.StatusServiceUnavailable, http.StatusText(http.StatusServiceUnavailable)),
		StatusCode: http.StatusServiceUnavailable,
		Proto:      req.Proto,
		ProtoMajor: req.ProtoMajor,
		ProtoMinor: req.ProtoMinor,
		Header:     http.Header{"Content-Type": []string{"text/plain"}},
		Body:       io.NopCloser(io.Reader(&errBody{})),
		Request:    req,
	}
}

// errBody is the synthetic 503's body.
type errBody struct{ done bool }

func (b *errBody) Read(p []byte) (int, error) {
	if b.done {
		return 0, io.EOF
	}
	b.done = true
	n := copy(p, "chaos: injected 503")
	return n, io.EOF
}
