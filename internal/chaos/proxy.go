package chaos

import (
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
)

// NewProxy returns an HTTP handler reverse-proxying to target with the
// fault schedule applied between proxy and target, plus the underlying
// Transport for fault-count inspection. Mounted on its own listener it
// injects faults between two REAL processes (a worker binary and a
// coordinator binary), where the in-process RoundTripper cannot reach.
//
// Fault semantics through the proxy: a dropped request/response or
// partition surfaces to the client as a 502 from the proxy — still a
// transient fault the worker's transport must absorb — while the
// drop-response case has, as ever, already been applied by the target.
func NewProxy(target string, s Schedule) (http.Handler, *Transport, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: proxy target %q: %w", target, err)
	}
	t := NewTransport(s)
	p := httputil.NewSingleHostReverseProxy(u)
	p.Transport = t
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
	return p, t, nil
}
