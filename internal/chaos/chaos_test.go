package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeterministicDecisions: two transports with the same seed make
// identical fault decisions for a serial request sequence.
func TestDeterministicDecisions(t *testing.T) {
	s := Schedule{Seed: 42, DropRequestP: 0.3, DropResponseP: 0.2, Err5xxP: 0.1, LatencyP: 0.25, LatencyMin: time.Microsecond, LatencyMax: 2 * time.Microsecond}
	a, b := NewTransport(s), NewTransport(s)
	for i := 0; i < 200; i++ {
		da, db := a.decide(), b.decide()
		da.delay, db.delay = 0, 0 // latency magnitude draws are compared via the flag only
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

// TestDropRequestNeverReachesServer: a dropped request must not hit the
// backend; the client sees ErrInjected.
func TestDropRequestNeverReachesServer(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer hs.Close()
	client := &http.Client{Transport: NewTransport(Schedule{Seed: 1, DropRequestP: 1})}
	_, err := client.Get(hs.URL)
	if err == nil || !errors.Is(unwrapURL(err), ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server %d times", hits.Load())
	}
}

// TestDropResponseAppliesServerSide: the nastiest case — the server
// fully processes the request, the client still sees a failure.
func TestDropResponseAppliesServerSide(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "applied")
	}))
	defer hs.Close()
	tr := NewTransport(Schedule{Seed: 1, DropResponseP: 1})
	client := &http.Client{Transport: tr}
	_, err := client.Get(hs.URL)
	if err == nil || !errors.Is(unwrapURL(err), ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("request should have been applied exactly once, got %d", hits.Load())
	}
	if st := tr.Stats(); st.DroppedResponses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSynthetic5xxShortCircuits: the injected 503 never reaches the
// backend and carries a readable body.
func TestSynthetic5xxShortCircuits(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer hs.Close()
	client := &http.Client{Transport: NewTransport(Schedule{Seed: 1, Err5xxP: 1})}
	resp, err := client.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "chaos") {
		t.Fatalf("body = %q", body)
	}
	if hits.Load() != 0 {
		t.Fatalf("synthetic 503 reached the server %d times", hits.Load())
	}
}

// TestPartitionWindow: requests inside the window fail unforwarded;
// after it closes they pass again.
func TestPartitionWindow(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer hs.Close()
	tr := NewTransport(Schedule{Seed: 1, Partitions: []Window{{From: 0, Until: 80 * time.Millisecond}}})
	client := &http.Client{Transport: tr}
	if _, err := client.Get(hs.URL); err == nil {
		t.Fatal("request inside the partition window should fail")
	}
	time.Sleep(120 * time.Millisecond)
	if _, err := client.Get(hs.URL); err != nil {
		t.Fatalf("request after the window should pass: %v", err)
	}
	if st := tr.Stats(); st.PartitionDrops != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestLatencyInjection: a scheduled delay postpones the exchange but
// does not fail it.
func TestLatencyInjection(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer hs.Close()
	tr := NewTransport(Schedule{Seed: 1, LatencyP: 1, LatencyMin: 30 * time.Millisecond, LatencyMax: 30 * time.Millisecond})
	client := &http.Client{Transport: tr}
	t0 := time.Now()
	if _, err := client.Get(hs.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("exchange took %v, want >= 30ms of injected latency", d)
	}
	if st := tr.Stats(); st.Delayed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestProxyInjectsBetweenProcesses: the reverse proxy converts an
// injected fault into a 502 toward its client while latency passes
// through transparently.
func TestProxyInjectsBetweenProcesses(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer hs.Close()

	h, tr, err := NewProxy(hs.URL, Schedule{Seed: 9, DropRequestP: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps := httptest.NewServer(h)
	defer ps.Close()
	resp, err := http.Get(ps.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if st := tr.Stats(); st.DroppedRequests != 1 {
		t.Fatalf("stats: %+v", st)
	}

	clean, _, err := NewProxy(hs.URL, Schedule{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(clean)
	defer cs.Close()
	resp, err = http.Get(cs.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("clean proxy: %d %q", resp.StatusCode, body)
	}
}

// unwrapURL strips the *url.Error wrapper http.Client adds.
func unwrapURL(err error) error {
	for {
		u := errors.Unwrap(err)
		if u == nil {
			return err
		}
		err = u
	}
}
