package mpmb

import (
	"sync"
	"testing"
)

// TestSearcherMatchesOneShot: Searcher results must be bit-identical to
// the package-level functions with identical options.
func TestSearcherMatchesOneShot(t *testing.T) {
	g := figure1(t)
	s := NewSearcher(g)
	if s.Graph() != g {
		t.Fatal("Graph() does not return the wrapped graph")
	}
	for _, m := range []Method{MethodOLS, MethodOLSKL, MethodOS, MethodExact} {
		opt := Options{Method: m, Trials: 5000, PrepTrials: 100, Seed: 7, Mu: 0.05}
		want, err := Search(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got, err := s.Search(opt)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(got.Estimates) != len(want.Estimates) {
			t.Fatalf("%s: %d estimates vs %d", m, len(got.Estimates), len(want.Estimates))
		}
		for i := range got.Estimates {
			if got.Estimates[i] != want.Estimates[i] {
				t.Fatalf("%s: estimate %d differs: %+v vs %+v", m, i, got.Estimates[i], want.Estimates[i])
			}
		}
	}
}

// TestSearcherCachesCandidates: two OLS queries with the same preparing
// parameters share a candidate set (observable via CandidateCount and,
// indirectly, identical results across estimator switches).
func TestSearcherCachesCandidates(t *testing.T) {
	g := figure1(t)
	s := NewSearcher(g)
	n1, err := s.CandidateCount(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("no candidates found")
	}
	n2, err := s.CandidateCount(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("cache instability: %d then %d candidates", n1, n2)
	}
	// Different key → independent entry (may differ in content).
	if _, err := s.CandidateCount(50, 8); err != nil {
		t.Fatal(err)
	}
}

// TestSearcherConcurrent: concurrent queries race-safely share the cache.
func TestSearcherConcurrent(t *testing.T) {
	g := figure1(t)
	s := NewSearcher(g)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := MethodOLS
			if i%2 == 1 {
				m = MethodOLSKL
			}
			_, err := s.Search(Options{Method: m, Trials: 500, PrepTrials: 50, Seed: 3, Mu: 0.05})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSearcherSingleFlightPrep: a burst of concurrent identical queries
// runs the preparing phase exactly once. The observer's PrepTrials
// counter is the witness — it counts prep work actually executed, so N
// concurrent searches sharing one flight must report one prep's worth.
func TestSearcherSingleFlightPrep(t *testing.T) {
	g := figure1(t)
	s := NewSearcher(g)
	const prep = 200
	obs := NewObserver(ObserverConfig{})
	// Attaching one observer to concurrent runs is not allowed, so give
	// each goroutine its own and sum at the end.
	const n = 8
	observers := make([]*Observer, n)
	for i := range observers {
		observers[i] = NewObserver(ObserverConfig{})
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Search(Options{Method: MethodOLS, Trials: 500, PrepTrials: prep, Seed: 11, Mu: 0.05, Observer: observers[i]})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var total int64
	for _, o := range observers {
		total += o.Metrics().PrepTrials
	}
	if total != prep {
		t.Fatalf("%d concurrent identical searches executed %d prep trials in total, want exactly %d (single flight)", n, total, prep)
	}
	// And the flight's product is cached for later callers.
	res, err := s.Search(Options{Method: MethodOLS, Trials: 500, PrepTrials: prep, Seed: 11, Mu: 0.05, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || obs.Metrics().PrepTrials != 0 {
		t.Fatalf("cache hit after the flight still ran %d prep trials", obs.Metrics().PrepTrials)
	}
}

// TestSearcherValidation propagates option errors.
func TestSearcherValidation(t *testing.T) {
	s := NewSearcher(figure1(t))
	if _, err := s.Search(Options{Method: MethodOLS, Trials: 0}); err == nil {
		t.Fatal("invalid options accepted")
	}
}
