package mpmb

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

// TestSearchContextCancelledReturnsPartial is the acceptance contract:
// cancelling mid-run returns a partial Result with TrialsDone < Trials
// for every method, instead of an error or discarded work.
func TestSearchContextCancelledReturnsPartial(t *testing.T) {
	g := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first trial

	for _, m := range []Method{MethodMCVP, MethodOS, MethodOLSKL, MethodOLS, MethodExact} {
		opt := DefaultOptions()
		opt.Method = m
		opt.Trials = 5000
		res, err := SearchContext(ctx, g, opt)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !res.Partial {
			t.Fatalf("%s: cancelled run not marked partial", m)
		}
		if res.TrialsDone >= res.Trials && m != MethodExact {
			t.Fatalf("%s: TrialsDone = %d, Trials = %d, want TrialsDone < Trials", m, res.TrialsDone, res.Trials)
		}
	}

	// An uncancelled context changes nothing.
	res, err := SearchContext(context.Background(), g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.TrialsDone != res.Trials {
		t.Fatalf("complete run mis-reported: Partial=%v TrialsDone=%d Trials=%d", res.Partial, res.TrialsDone, res.Trials)
	}
	plain, err := Search(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Estimates) != len(res.Estimates) {
		t.Fatalf("SearchContext and Search disagree: %d vs %d estimates", len(res.Estimates), len(plain.Estimates))
	}
	for i := range plain.Estimates {
		if plain.Estimates[i] != res.Estimates[i] {
			t.Fatalf("estimate %d differs between Search and SearchContext", i)
		}
	}
}

// TestSearchContextResumeThroughFiles runs the full degradation cycle
// through the public API: cancel, persist the checkpoint to disk, reload,
// resume, and require bit-identity with an uninterrupted run — including
// with parallel workers under way.
func TestSearchContextResumeThroughFiles(t *testing.T) {
	g := figure1(t)
	for _, workers := range []int{0, 4} {
		opt := DefaultOptions()
		opt.Method = MethodOS
		opt.Trials = 100000
		opt.Seed = 13
		opt.Workers = workers

		ref, err := Search(g, opt)
		if err != nil {
			t.Fatal(err)
		}

		// Cancel partway through via a deadline that is already close; use
		// a deterministic short timeout long enough to finish some trials.
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		var part *Result
		go func() {
			defer close(done)
			part, err = SearchContext(ctx, g, opt)
		}()
		time.Sleep(time.Millisecond)
		cancel()
		<-done
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !part.Partial {
			// The run won the race; nothing to resume this round.
			continue
		}
		if part.Checkpoint == nil {
			t.Fatalf("workers=%d: partial result without checkpoint", workers)
		}

		path := filepath.Join(t.TempDir(), "os.ckpt")
		if err := SaveCheckpoint(path, part.Checkpoint); err != nil {
			t.Fatal(err)
		}
		ck, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		opt.Resume = ck
		resumed, err := SearchContext(context.Background(), g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.Partial {
			t.Fatalf("workers=%d: resumed run still partial", workers)
		}
		if len(resumed.Estimates) != len(ref.Estimates) {
			t.Fatalf("workers=%d: %d estimates after resume, want %d", workers, len(resumed.Estimates), len(ref.Estimates))
		}
		for i := range ref.Estimates {
			if resumed.Estimates[i] != ref.Estimates[i] {
				t.Fatalf("workers=%d: estimate %d differs after resume: %+v vs %+v",
					workers, i, resumed.Estimates[i], ref.Estimates[i])
			}
		}
	}
}

// TestOptionsRejectUnsupportedCombos pins the validation errors for the
// new Workers and Resume fields.
func TestOptionsRejectUnsupportedCombos(t *testing.T) {
	g := figure1(t)
	opt := DefaultOptions()
	opt.Method = MethodMCVP
	opt.Workers = 2
	if _, err := Search(g, opt); err == nil {
		t.Fatal("mc-vp accepted Workers > 0")
	}
	opt = DefaultOptions()
	opt.Method = MethodExact
	opt.Workers = 2
	if _, err := Search(g, opt); err == nil {
		t.Fatal("exact accepted Workers > 0")
	}
	opt = DefaultOptions()
	opt.Method = MethodExact
	opt.Workers = 0
	opt.Resume = &Checkpoint{Method: "os", Trials: 1}
	if _, err := Search(g, opt); err == nil {
		t.Fatal("exact accepted a resume checkpoint")
	}
	opt = DefaultOptions()
	opt.Workers = -1
	if _, err := Search(g, opt); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestSearcherSearchContext checks the Searcher's cancellable path reuses
// cached candidates and honours Workers, returning results identical to
// the one-shot API.
func TestSearcherSearchContext(t *testing.T) {
	g := figure1(t)
	s := NewSearcher(g)
	opt := DefaultOptions()
	opt.Trials = 3000
	opt.Seed = 21

	ref, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3} {
		opt.Workers = workers
		res, err := s.SearchContext(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Estimates {
			if res.Estimates[i] != ref.Estimates[i] {
				t.Fatalf("workers=%d: estimate %d differs from one-shot search", workers, i)
			}
		}
	}

	// A cancelled context degrades to a partial result here too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt.Workers = 0
	res, err := s.SearchContext(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.TrialsDone != 0 {
		t.Fatalf("cancelled Searcher run: Partial=%v TrialsDone=%d", res.Partial, res.TrialsDone)
	}
}
