package mpmb

// Cross-method integration tests over the synthetic datasets: the four
// samplers approximate the same distribution, so their headline answers
// must agree — the MPMB itself, the composition of the top-k sets, and
// the estimated probabilities of shared butterflies. These run at reduced
// scale with fixed seeds (deterministic, no flakes) and generous
// statistical tolerances.

import (
	"math"
	"testing"
)

// datasetCase configures one dataset for the integration sweep: scale
// keeps runtime in check, trials give the estimates enough resolution.
var integrationCases = []struct {
	name   string
	scale  float64
	trials int
}{
	{"abide", 0.4, 3000},
	{"movielens", 0.1, 2000},
	{"jester", 0.1, 2000},
	{"protein", 0.2, 2000},
}

func TestCrossMethodTopKConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is slow")
	}
	for _, tc := range integrationCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d, err := GenerateDataset(tc.name, DatasetConfig{Seed: 5, Scale: tc.scale})
			if err != nil {
				t.Fatal(err)
			}
			g := d.G
			opt := Options{Trials: tc.trials, PrepTrials: 150, Seed: 9, Mu: 0.05}

			osRes, err := SearchOS(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			olsRes, err := SearchOLS(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			klRes, err := SearchOLSKL(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			osBest, ok := osRes.Best()
			if !ok {
				t.Fatal("OS found nothing")
			}

			// The OS MPMB must appear near the top of both OLS variants
			// with a comparable probability estimate.
			for _, res := range []*Result{olsRes, klRes} {
				est, found := res.Lookup(osBest.B)
				if !found {
					t.Fatalf("%s: OS MPMB %v missing entirely", res.Method, osBest.B)
				}
				// Allow absolute slack for sampling noise plus modest
				// Lemma VI.5 upward bias on the OLS side.
				if est.P < osBest.P-0.1 || est.P > osBest.P+0.15 {
					t.Errorf("%s: P(%v)=%.3f, OS says %.3f", res.Method, osBest.B, est.P, osBest.P)
				}
			}

			// Per-butterfly agreement on the heads of both rankings.
			// Set identity of top-k lists is NOT required: rating
			// datasets contain hundreds of butterflies tied at the
			// maximum weight with near-identical P, where rank order
			// among equals is arbitrary. What must agree is the
			// probability each method assigns to the same butterfly.
			for _, e := range osRes.TopK(5) {
				got, found := olsRes.Lookup(e.B)
				if !found {
					if e.P > 0.2 {
						t.Errorf("OLS misses OS top butterfly %v with P=%.3f", e.B, e.P)
					}
					continue
				}
				if math.Abs(got.P-e.P) > 0.12 {
					t.Errorf("P(%v): OLS %.3f vs OS %.3f", e.B, got.P, e.P)
				}
			}
			for _, e := range olsRes.TopK(5) {
				got, found := osRes.Lookup(e.B)
				if !found {
					if e.P > 0.2 {
						t.Errorf("OS never saw OLS top butterfly %v with P̂=%.3f", e.B, e.P)
					}
					continue
				}
				if math.Abs(got.P-e.P) > 0.12 {
					t.Errorf("P(%v): OS %.3f vs OLS %.3f", e.B, got.P, e.P)
				}
			}
		})
	}
}

// TestProbabilityMassSanity: on every dataset, estimates lie in [0,1] and
// each butterfly's estimated probability never exceeds its existence
// probability by more than sampling noise.
func TestProbabilityMassSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is slow")
	}
	for _, tc := range integrationCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d, err := GenerateDataset(tc.name, DatasetConfig{Seed: 5, Scale: tc.scale})
			if err != nil {
				t.Fatal(err)
			}
			res, err := SearchOLS(d.G, Options{Trials: tc.trials, PrepTrials: 100, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range res.Estimates {
				if e.P < 0 || e.P > 1 {
					t.Fatalf("P(%v) = %v out of range", e.B, e.P)
				}
				pr, ok := e.B.ExistProb(d.G)
				if !ok {
					t.Fatalf("estimate for non-backbone butterfly %v", e.B)
				}
				if e.P > pr+4*math.Sqrt(pr*(1-pr)/float64(tc.trials))+0.02 {
					t.Errorf("P(%v)=%.4f exceeds existence %.4f beyond noise", e.B, e.P, pr)
				}
			}
		})
	}
}

// TestCountingConsistencyAcrossDatasets: the closed-form expected count
// matches the PMF estimate within tolerance on the scaled datasets.
func TestCountingConsistencyAcrossDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is slow")
	}
	for _, name := range []string{"abide"} {
		d, err := GenerateDataset(name, DatasetConfig{Seed: 5, Scale: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		exact := ExpectedButterflies(d.G)
		pmf, err := ButterflyCountPMF(d.G, 2000, 3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pmf.Mean()-exact) > 0.05*exact+1 {
			t.Fatalf("%s: PMF mean %v vs exact %v", name, pmf.Mean(), exact)
		}
	}
}
