package mpmb_test

import (
	"fmt"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// buildFigure1 constructs the paper's running example network.
func buildFigure1() *mpmb.Graph {
	b := mpmb.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5) // (u1, v1)
	b.MustAddEdge(0, 1, 2, 0.6) // (u1, v2)
	b.MustAddEdge(0, 2, 1, 0.8) // (u1, v3)
	b.MustAddEdge(1, 0, 3, 0.3) // (u2, v1)
	b.MustAddEdge(1, 1, 3, 0.4) // (u2, v2)
	b.MustAddEdge(1, 2, 1, 0.7) // (u2, v3)
	return b.Build()
}

// Exact enumeration is feasible for small graphs and gives the true
// P(B) of every butterfly.
func ExampleExact() {
	g := buildFigure1()
	res, err := mpmb.Exact(g)
	if err != nil {
		panic(err)
	}
	best, _ := res.Best()
	fmt.Printf("MPMB %v has weight %g and P=%.4f\n", best.B, best.Weight, best.P)
	// Output:
	// MPMB B(0,1|1,2) has weight 7 and P=0.1142
}

// SearchOS samples possible worlds with the Ordering Sampling algorithm;
// with a fixed Seed the result is reproducible.
func ExampleSearchOS() {
	g := buildFigure1()
	res, err := mpmb.SearchOS(g, mpmb.Options{Trials: 20000, Seed: 42})
	if err != nil {
		panic(err)
	}
	best, _ := res.Best()
	fmt.Printf("estimated MPMB is %v\n", best.B)
	// Output:
	// estimated MPMB is B(0,1|1,2)
}

// RequiredTrials sizes a sampling budget from the paper's ε-δ theory.
func ExampleRequiredTrials() {
	n, err := mpmb.RequiredTrials(0.05, 0.1, 0.1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("probabilities ≥ 0.05 need %d trials for 10%% error at 90%% confidence\n", n)
	// Output:
	// probabilities ≥ 0.05 need 23966 trials for 10% error at 90% confidence
}

// CountButterflies and ExpectedButterflies summarize a network's
// butterfly structure without any search.
func ExampleCountButterflies() {
	g := buildFigure1()
	fmt.Printf("backbone butterflies: %d, expected per world: %.4f\n",
		mpmb.CountButterflies(g), mpmb.ExpectedButterflies(g))
	// Output:
	// backbone butterflies: 3, expected per world: 0.2544
}
