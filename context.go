package mpmb

import (
	"context"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// ErrWorkerPanic is wrapped by the error a parallel search (Options.Workers
// > 0) returns when a worker goroutine panics: the panic is recovered, the
// sibling workers are cancelled, and the panic value is reported through
// errors.Is(err, ErrWorkerPanic) instead of crashing the process.
var ErrWorkerPanic = core.ErrWorkerPanic

// Checkpoint is the resumable accumulator state of a cancelled search,
// attached to the partial Result and accepted back via Options.Resume. It
// records the method, seed, trial targets and a fingerprint of the graph,
// so a checkpoint can only resume the run that wrote it; the resumed run
// finishes bit-identically to one that was never interrupted.
type Checkpoint = core.Checkpoint

// SaveCheckpoint writes a checkpoint to path in a versioned, checksummed
// binary format (written atomically via a temporary file).
func SaveCheckpoint(path string, c *Checkpoint) error {
	return core.SaveCheckpoint(path, c)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint, verifying
// its checksum and internal consistency. Truncated, corrupted or
// version-skewed files return an error.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return core.LoadCheckpoint(path)
}

// SearchContext is Search with graceful degradation: when ctx is cancelled
// (deadline, timeout, signal) the run stops at the next trial boundary and
// returns the work already done as a partial *Result instead of
// discarding it — Result.Partial is true, Result.TrialsDone < Result.Trials,
// and the estimates are normalized over the completed trials. Because
// every trial's random stream derives from (Seed, trial index), that
// completed prefix is exactly the run Options.Trials=TrialsDone would have
// produced: a valid, unbiased (if lower-fidelity) estimate, not a
// corrupted one.
//
// For the resumable methods (mc-vp, os, ols, ols-kl) the partial Result
// also carries Result.Checkpoint; pass it back via Options.Resume (or
// persist it with SaveCheckpoint) to finish the run later,
// bit-identically to an uninterrupted one. A cancelled exact enumeration
// returns partial lower-bound sums with no checkpoint.
//
// Cancellation is reported through the Result, not the error: the error
// is non-nil only for invalid options or an internal failure (e.g. a
// worker panic when Options.Workers > 0). A ctx that is already cancelled
// on entry yields an empty partial Result with TrialsDone == 0.
func SearchContext(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	return searchHook(g, opt, ctxHook(ctx))
}

// ctxHook adapts a context to the core Interrupt polling hook. The hook
// is safe for concurrent use, as the parallel runners require.
func ctxHook(ctx context.Context) func() bool {
	if ctx == nil {
		return nil
	}
	return func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
}
