module github.com/uncertain-graphs/mpmb

go 1.22
