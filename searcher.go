package mpmb

import (
	"context"
	"sync"

	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Searcher answers repeated MPMB queries against one graph, reusing the
// expensive shared state between calls — most importantly the OLS
// preparing phase, which dominates total cost on large networks (Fig. 8):
// candidate sets are cached per (PrepTrials, Seed), so sweeping sampling
// budgets, switching between the OLS and OLS-KL estimators, or asking for
// different top-k views pays for candidate listing once.
//
// A Searcher is safe for concurrent use. Concurrent searches needing the
// same (PrepTrials, Seed) candidate set are single-flighted: one caller
// runs the preparing phase while the others wait for its result, so a
// burst of identical queries — the multi-tenant daemon's steady state —
// pays for candidate listing exactly once.
type Searcher struct {
	g *Graph

	mu    sync.Mutex
	cands map[candKey]*candEntry
}

type candKey struct {
	prepTrials int
	seed       uint64
}

// candEntry is one single-flight slot: ready closes when the preparing
// phase finishes, after which cands/err are immutable.
type candEntry struct {
	ready chan struct{}
	cands *core.Candidates
	err   error
}

// NewSearcher wraps g for repeated queries.
func NewSearcher(g *Graph) *Searcher {
	return &Searcher{g: g, cands: make(map[candKey]*candEntry)}
}

// Graph returns the wrapped graph.
func (s *Searcher) Graph() *Graph { return s.g }

// Search dispatches like the package-level Search, but OLS-family methods
// reuse the cached candidate set for (opt.PrepTrials, opt.Seed) instead of
// re-running the preparing phase. Results are identical to the one-shot
// functions with the same options.
func (s *Searcher) Search(opt Options) (*Result, error) {
	return s.searchHook(opt, nil)
}

// SearchContext is Search with the package-level SearchContext's
// graceful-degradation contract: cancelling ctx returns a partial Result
// (with a resumable Checkpoint for the resumable methods) instead of
// discarding the completed trials. Resume a sampling-phase checkpoint by
// passing it back via opt.Resume; a prepare-phase OLS checkpoint must go
// through the package-level SearchContext, which re-runs the preparing
// phase the Searcher would otherwise cache.
func (s *Searcher) SearchContext(ctx context.Context, opt Options) (*Result, error) {
	return s.searchHook(opt, ctxHook(ctx))
}

func (s *Searcher) searchHook(opt Options, interrupt func() bool) (*Result, error) {
	switch opt.Method {
	case MethodOLS, MethodOLSKL, Method(""):
		method := opt.Method
		if method == "" {
			method = MethodOLS
		}
		if err := opt.validateFor(method); err != nil {
			return nil, err
		}
		probe := opt.Observer.probe(method, opt.Workers)
		// The preparing phase is only instrumented when this call actually
		// runs it; a cache hit reports no prep trials — the metrics
		// reflect work done, not work reused.
		cands, err := s.candidatesProbe(opt.PrepTrials, opt.Seed, probe)
		if err != nil {
			return nil, err
		}
		var res *Result
		if opt.adaptive() {
			// The supervisor seeds from the cached candidate set; an audit
			// escalation re-prepares past it (the widened set is not cached
			// back — it depends on audit state, not on (PrepTrials, Seed)).
			res, err = core.Supervise(s.g, supervisorOptions(opt, method, interrupt, cands, probe))
		} else {
			res, err = core.OLSSamplingPhaseParallel(cands, core.OLSOptions{
				PrepTrials:  opt.PrepTrials,
				Trials:      opt.Trials,
				Seed:        opt.Seed,
				UseKarpLuby: method == MethodOLSKL,
				KL:          core.KLOptions{Mu: opt.Mu},
				Interrupt:   interrupt,
				Resume:      opt.Resume,
				Probe:       probe,
				Executor:    opt.Executor,
			}, opt.Workers)
		}
		if err != nil {
			return nil, err
		}
		finishMetrics(opt.Observer, res)
		return res, nil
	default:
		return searchHook(s.g, opt, interrupt)
	}
}

// CandidateCount reports how many candidate butterflies the preparing
// phase for (prepTrials, seed) finds, materializing (and caching) it.
func (s *Searcher) CandidateCount(prepTrials int, seed uint64) (int, error) {
	cands, err := s.candidates(prepTrials, seed)
	if err != nil {
		return 0, err
	}
	return cands.Len(), nil
}

func (s *Searcher) candidates(prepTrials int, seed uint64) (*core.Candidates, error) {
	return s.candidatesProbe(prepTrials, seed, nil)
}

func (s *Searcher) candidatesProbe(prepTrials int, seed uint64, probe *telemetry.Probe) (*core.Candidates, error) {
	key := candKey{prepTrials: prepTrials, seed: seed}
	s.mu.Lock()
	e, ok := s.cands[key]
	if ok {
		s.mu.Unlock()
		// Either a completed prep (ready already closed) or one in
		// flight; wait rather than duplicating the work. The follower's
		// probe records nothing for the preparing phase — the metrics
		// reflect work done, not work awaited.
		<-e.ready
		return e.cands, e.err
	}
	e = &candEntry{ready: make(chan struct{})}
	s.cands[key] = e
	s.mu.Unlock()

	// Prepare outside the lock: the phase is expensive and the slot
	// already claims the key, so concurrent identical preps run once.
	e.cands, e.err = core.PrepareCandidates(s.g, prepTrials, seed, core.OSOptions{Probe: probe})
	if e.err != nil {
		// A failed prep must not poison the key forever: evict the slot
		// so a later call retries (waiters already joined still see the
		// error of the flight they joined).
		s.mu.Lock()
		if s.cands[key] == e {
			delete(s.cands, key)
		}
		s.mu.Unlock()
	}
	close(e.ready)
	return e.cands, e.err
}
