package mpmb

import (
	"context"
	"sync"

	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Searcher answers repeated MPMB queries against one graph, reusing the
// expensive shared state between calls — most importantly the OLS
// preparing phase, which dominates total cost on large networks (Fig. 8):
// candidate sets are cached per (PrepTrials, Seed), so sweeping sampling
// budgets, switching between the OLS and OLS-KL estimators, or asking for
// different top-k views pays for candidate listing once.
//
// A Searcher is safe for concurrent use. Concurrent searches needing the
// same (PrepTrials, Seed) candidate set are single-flighted: one caller
// runs the preparing phase while the others wait for its result, so a
// burst of identical queries — the multi-tenant daemon's steady state —
// pays for candidate listing exactly once.
type Searcher struct {
	g *Graph

	mu    sync.Mutex
	cands map[candKey]*candEntry
	comms map[uint64]*commEntry
}

// candKey identifies one preparing-phase run. The zero anchor is the
// global preparing phase; anchored queries cache their (disjoint)
// anchored candidate sets under the same map.
type candKey struct {
	prepTrials int
	seed       uint64
	anchor     core.Anchor
}

// candEntry is one single-flight slot: ready closes when the preparing
// phase finishes, after which cands/err are immutable.
type candEntry struct {
	ready chan struct{}
	cands *core.Candidates
	err   error
}

// commEntry is one cached community split: the induced subgraphs plus a
// child Searcher per community, so repeated community queries reuse both
// the split and each community's preparing phases. Keyed by a hash of
// the label slices; specL/specR keep the exact labels to rule out
// collisions.
type commEntry struct {
	ready chan struct{}
	specL []int
	specR []int
	subs  []core.CommunityGraph
	kids  []*Searcher
	err   error
}

// NewSearcher wraps g for repeated queries.
func NewSearcher(g *Graph) *Searcher {
	return &Searcher{
		g:     g,
		cands: make(map[candKey]*candEntry),
		comms: make(map[uint64]*commEntry),
	}
}

// Graph returns the wrapped graph.
func (s *Searcher) Graph() *Graph { return s.g }

// Search dispatches like the package-level Search, but OLS-family methods
// reuse the cached candidate set for (opt.PrepTrials, opt.Seed) instead of
// re-running the preparing phase. Results are identical to the one-shot
// functions with the same options.
func (s *Searcher) Search(opt Options) (*Result, error) {
	return s.searchHook(opt, nil)
}

// SearchContext is Search with the package-level SearchContext's
// graceful-degradation contract: cancelling ctx returns a partial Result
// (with a resumable Checkpoint for the resumable methods) instead of
// discarding the completed trials. Resume a sampling-phase checkpoint by
// passing it back via opt.Resume; a prepare-phase OLS checkpoint must go
// through the package-level SearchContext, which re-runs the preparing
// phase the Searcher would otherwise cache.
func (s *Searcher) SearchContext(ctx context.Context, opt Options) (*Result, error) {
	return s.searchHook(opt, ctxHook(ctx))
}

func (s *Searcher) searchHook(opt Options, interrupt func() bool) (*Result, error) {
	switch opt.Method {
	case MethodOLS, MethodOLSKL, Method(""):
		method := opt.Method
		if method == "" {
			method = MethodOLS
		}
		if err := opt.validateFor(method); err != nil {
			return nil, err
		}
		if q := opt.Query; q != nil && q.Community != nil {
			return s.searchCommunities(opt, method, interrupt)
		}
		anchor := core.Anchor{}
		var sizing *core.PrepSizing
		if q := opt.Query; q != nil {
			if q.anchored() {
				a, err := q.coreAnchor(s.g)
				if err != nil {
					return nil, err
				}
				anchor = a
			}
			if q.AdaptivePrep {
				var sizeAnchor *core.Anchor
				if anchor.Kind != 0 {
					sizeAnchor = &anchor
				}
				sz, m := applySizing(s.g, &opt, method, sizeAnchor)
				sizing = &sz
				if m == MethodOS {
					// The sizing pre-pass entered the ladder at OS: no
					// preparing phase, so no candidate cache involved.
					res, err := runAnchoredOrGlobalOS(s.g, anchor, opt, interrupt)
					if err != nil {
						return nil, err
					}
					attachSizing(res, sz)
					finishMetrics(opt.Observer, res)
					return res, nil
				}
			}
		}
		probe := opt.Observer.probe(method, opt.Workers)
		// The preparing phase is only instrumented when this call actually
		// runs it; a cache hit reports no prep trials — the metrics
		// reflect work done, not work reused.
		cands, err := s.candidatesProbe(opt.PrepTrials, opt.Seed, anchor, probe)
		if err != nil {
			return nil, err
		}
		var res *Result
		if opt.adaptive() {
			// The supervisor seeds from the cached candidate set; an audit
			// escalation re-prepares past it (the widened set is not cached
			// back — it depends on audit state, not on (PrepTrials, Seed)).
			// Anchored queries reject the adaptive options, so this branch
			// only runs with the global candidate set.
			res, err = core.Supervise(s.g, supervisorOptions(opt, method, interrupt, cands, probe))
		} else {
			res, err = core.OLSSamplingPhaseParallel(cands, core.OLSOptions{
				PrepTrials:  opt.PrepTrials,
				Trials:      opt.Trials,
				Seed:        opt.Seed,
				UseKarpLuby: method == MethodOLSKL,
				KL:          core.KLOptions{Mu: opt.Mu},
				Interrupt:   interrupt,
				Resume:      opt.Resume,
				Probe:       probe,
				Executor:    opt.Executor,
			}, opt.Workers)
		}
		if err != nil {
			return nil, err
		}
		if sizing != nil {
			attachSizing(res, *sizing)
		}
		finishMetrics(opt.Observer, res)
		return res, nil
	default:
		return searchHook(s.g, opt, interrupt)
	}
}

// searchCommunities is the Searcher's community fan-out: the split and
// one child Searcher per community are cached, so each community's
// preparing phase is listed once across repeated queries.
func (s *Searcher) searchCommunities(opt Options, method Method, interrupt func() bool) (*Result, error) {
	subs, kids, err := s.communityEntry(opt.Query.Community)
	if err != nil {
		return nil, err
	}
	parts, err := runCommunities(subs, opt, func(i int, cg core.CommunityGraph, innerOpt Options) (*Result, error) {
		return kids[i].searchHook(innerOpt, interrupt)
	})
	if err != nil {
		return nil, err
	}
	return assembleCommunities(opt, method, parts)
}

// communityEntry returns the cached (or freshly built) community split
// for the label slices, single-flighted like the candidate cache. A hash
// collision with different labels bypasses the cache rather than
// poisoning it.
func (s *Searcher) communityEntry(c *Communities) ([]core.CommunityGraph, []*Searcher, error) {
	key := communityLabelHash(c.L, c.R)
	s.mu.Lock()
	e, ok := s.comms[key]
	if ok {
		s.mu.Unlock()
		<-e.ready
		if e.err == nil && intsEqual(e.specL, c.L) && intsEqual(e.specR, c.R) {
			return e.subs, e.kids, nil
		}
		if e.err != nil {
			return nil, nil, e.err
		}
		// Hash collision: build uncached.
		subs, err := communitySubgraphs(s.g, c)
		if err != nil {
			return nil, nil, err
		}
		return subs, communityKids(subs), nil
	}
	e = &commEntry{ready: make(chan struct{}), specL: append([]int(nil), c.L...), specR: append([]int(nil), c.R...)}
	s.comms[key] = e
	s.mu.Unlock()

	e.subs, e.err = communitySubgraphs(s.g, c)
	if e.err == nil {
		e.kids = communityKids(e.subs)
	} else {
		s.mu.Lock()
		if s.comms[key] == e {
			delete(s.comms, key)
		}
		s.mu.Unlock()
	}
	close(e.ready)
	return e.subs, e.kids, e.err
}

func communityKids(subs []core.CommunityGraph) []*Searcher {
	kids := make([]*Searcher, len(subs))
	for i, cg := range subs {
		kids[i] = NewSearcher(cg.G)
	}
	return kids
}

// communityLabelHash is FNV-1a over both label slices.
func communityLabelHash(l, r []int) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(len(l)))
	for _, c := range l {
		mix(uint64(int64(c)))
	}
	mix(uint64(len(r)))
	for _, c := range r {
		mix(uint64(int64(c)))
	}
	return h
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CandidateCount reports how many candidate butterflies the preparing
// phase for (prepTrials, seed) finds, materializing (and caching) it.
func (s *Searcher) CandidateCount(prepTrials int, seed uint64) (int, error) {
	cands, err := s.candidates(prepTrials, seed)
	if err != nil {
		return 0, err
	}
	return cands.Len(), nil
}

func (s *Searcher) candidates(prepTrials int, seed uint64) (*core.Candidates, error) {
	return s.candidatesProbe(prepTrials, seed, core.Anchor{}, nil)
}

func (s *Searcher) candidatesProbe(prepTrials int, seed uint64, anchor core.Anchor, probe *telemetry.Probe) (*core.Candidates, error) {
	key := candKey{prepTrials: prepTrials, seed: seed, anchor: anchor}
	s.mu.Lock()
	e, ok := s.cands[key]
	if ok {
		s.mu.Unlock()
		// Either a completed prep (ready already closed) or one in
		// flight; wait rather than duplicating the work. The follower's
		// probe records nothing for the preparing phase — the metrics
		// reflect work done, not work awaited.
		<-e.ready
		return e.cands, e.err
	}
	e = &candEntry{ready: make(chan struct{})}
	s.cands[key] = e
	s.mu.Unlock()

	// Prepare outside the lock: the phase is expensive and the slot
	// already claims the key, so concurrent identical preps run once.
	if anchor.Kind != 0 {
		e.cands, e.err = core.PrepareAnchoredCandidates(s.g, anchor, prepTrials, seed, nil)
	} else {
		e.cands, e.err = core.PrepareCandidates(s.g, prepTrials, seed, core.OSOptions{Probe: probe})
	}
	if e.err != nil {
		// A failed prep must not poison the key forever: evict the slot
		// so a later call retries (waiters already joined still see the
		// error of the flight they joined).
		s.mu.Lock()
		if s.cands[key] == e {
			delete(s.cands, key)
		}
		s.mu.Unlock()
	}
	close(e.ready)
	return e.cands, e.err
}
