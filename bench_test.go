package mpmb

// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation (Section VIII), plus ablation benchmarks for the
// design choices called out in DESIGN.md §6. The mpmb-bench command runs
// the same experiments at full trial counts with tabular output; these
// benchmarks keep per-iteration work small so `go test -bench=.` is a
// practical smoke of every experiment path, and so -benchmem exposes the
// allocation behaviour behind Fig. 13.
//
// Naming: BenchmarkFigure7Overall/<dataset>/<method> etc. Sub-benchmark
// time/op is the cost of the stated trial counts, not of a full paper
// run; relative ordering (the figures' shapes) is what matters.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bench"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/dataset"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// benchTrials keeps a single benchmark iteration cheap; mpmb-bench runs
// the full counts.
const (
	benchTrials     = 50
	benchPrepTrials = 20
)

var (
	benchOnce sync.Once
	benchSets map[string]*dataset.Dataset
)

// benchDatasets generates moderately sized datasets once: ABIDE at full
// size and the three larger sets scaled down so that even the MC-VP
// baseline can run a few trials.
func benchDatasets(b *testing.B) map[string]*dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchSets = make(map[string]*dataset.Dataset)
		scales := map[string]float64{
			"abide":     1,
			"movielens": 0.2,
			"jester":    0.2,
			"protein":   0.2,
		}
		for name, sc := range scales {
			d, err := dataset.ByName(name, dataset.Config{Seed: 1, Scale: sc})
			if err != nil {
				panic(err)
			}
			benchSets[name] = d
		}
	})
	return benchSets
}

// BenchmarkTable3DatasetDetails measures dataset generation itself (the
// substrate behind Table III).
func BenchmarkTable3DatasetDetails(b *testing.B) {
	for _, name := range dataset.Names {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := dataset.ByName(name, dataset.Config{Seed: uint64(i + 1), Scale: 0.05})
				if err != nil {
					b.Fatal(err)
				}
				if d.G.NumEdges() == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkFigure6RatioMatrix evaluates the Equation 8 grid.
func BenchmarkFigure6RatioMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bench.RunRatioMatrix()
		if len(m.Values) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkFigure7Overall is the headline comparison: every method on
// every dataset, fixed small trial counts per iteration. MC-VP runs only
// on ABIDE (elsewhere a single trial already exceeds a sensible iteration
// budget — exactly the paper's DNF observation).
func BenchmarkFigure7Overall(b *testing.B) {
	ds := benchDatasets(b)
	for _, name := range dataset.Names {
		g := ds[name].G
		b.Run(name+"/mc-vp", func(b *testing.B) {
			if name != "abide" {
				b.Skip("MC-VP is impractical beyond the smallest dataset (paper Fig. 7 DNF)")
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.MCVP(g, core.MCVPOptions{Trials: 5, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/os", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.OS(g, core.OSOptions{Trials: benchTrials, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, kl := range []bool{true, false} {
			label := name + "/ols"
			if kl {
				label = name + "/ols-kl"
			}
			kl := kl
			b.Run(label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := core.OLS(g, core.OLSOptions{
						PrepTrials:  benchPrepTrials,
						Trials:      benchTrials,
						Seed:        uint64(i + 1),
						UseKarpLuby: kl,
						KL:          core.KLOptions{Mu: 0.05},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure8PhaseSweep separates the two OLS phases, the quantity
// Fig. 8 varies.
func BenchmarkFigure8PhaseSweep(b *testing.B) {
	ds := benchDatasets(b)
	for _, name := range dataset.Names {
		g := ds[name].G
		b.Run(name+"/preparing", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PrepareCandidates(g, benchPrepTrials, uint64(i+1), core.OSOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		cands, err := core.PrepareCandidates(g, benchPrepTrials, 1, core.OSOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, frac := range []int{25, 50, 100} {
			frac := frac
			b.Run(fmt.Sprintf("%s/sampling-%d%%", name, frac), func(b *testing.B) {
				trials := benchTrials * frac / 100
				if trials < 1 {
					trials = 1
				}
				for i := 0; i < b.N; i++ {
					if _, err := core.EstimateOptimized(cands, core.OptimizedOptions{Trials: trials, Seed: uint64(i + 1)}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure9Scalability runs OS on growing vertex fractions.
func BenchmarkFigure9Scalability(b *testing.B) {
	ds := benchDatasets(b)
	for _, name := range []string{"abide", "movielens"} {
		g := ds[name].G
		for _, pct := range []int{25, 50, 75, 100} {
			pct := pct
			b.Run(fmt.Sprintf("%s/%d%%", name, pct), func(b *testing.B) {
				sub := g
				if pct < 100 {
					var err error
					sub, err = g.VertexSample(float64(pct)/100, benchRNG(uint64(pct)))
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.OS(sub, core.OSOptions{Trials: benchTrials, Seed: uint64(i + 1)}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure10TrialRatios prices the Eq. 8 ratio for every candidate
// of every dataset (the figure's bar data).
func BenchmarkFigure10TrialRatios(b *testing.B) {
	ds := benchDatasets(b)
	for _, name := range dataset.Names {
		g := ds[name].G
		cands, err := core.PrepareCandidates(g, benchPrepTrials, 1, core.OSOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			if cands.Len() == 0 {
				b.Skip("no candidates")
			}
			for i := 0; i < b.N; i++ {
				sum := 0.0
				for j := 0; j < cands.Len(); j++ {
					sum += core.KLOpRatio(cands.List[j].ExistProb, cands.SI(j), 0.1)
				}
				if sum < 0 {
					b.Fatal("impossible")
				}
			}
		})
	}
}

// BenchmarkFigure11Convergence traces estimator convergence (the Fig. 11
// machinery) on ABIDE.
func BenchmarkFigure11Convergence(b *testing.B) {
	opt := bench.DefaultOptions()
	opt.Datasets = []string{"abide"}
	opt.SampleTrials = 300
	opt.PrepTrials = benchPrepTrials
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i + 1)
		if _, err := bench.RunSamplingConvergence(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12PreparingTrend runs the independent preparing-phase
// sweep (the Fig. 12 machinery) on ABIDE.
func BenchmarkFigure12PreparingTrend(b *testing.B) {
	opt := bench.DefaultOptions()
	opt.Datasets = []string{"abide"}
	opt.SampleTrials = 200
	opt.PrepTrials = benchPrepTrials
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i + 1)
		if _, err := bench.RunPreparingTrend(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13Memory exercises each method under -benchmem; the
// B/op and allocs/op columns are this repo's analogue of the paper's
// memory plot (see also mpmb-bench -exp fig13 for peak-heap numbers).
func BenchmarkFigure13Memory(b *testing.B) {
	ds := benchDatasets(b)
	g := ds["abide"].G
	b.Run("mc-vp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.MCVP(g, core.MCVPOptions{Trials: 5, Seed: uint64(i + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("os", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.OS(g, core.OSOptions{Trials: benchTrials, Seed: uint64(i + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, kl := range []bool{true, false} {
		name := "ols"
		if kl {
			name = "ols-kl"
		}
		kl := kl
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := core.OLS(g, core.OLSOptions{
					PrepTrials: benchPrepTrials, Trials: benchTrials,
					Seed: uint64(i + 1), UseKarpLuby: kl, KL: core.KLOptions{Mu: 0.05},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEdgePrune isolates the Section V-B edge-ordering prune
// (DESIGN.md §6.1).
func BenchmarkAblationEdgePrune(b *testing.B) {
	g := benchDatasets(b)["abide"].G
	for _, disable := range []bool{false, true} {
		name := "prune-on"
		if disable {
			name = "prune-off"
		}
		disable := disable
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.OS(g, core.OSOptions{Trials: benchTrials, Seed: uint64(i + 1), DisableEdgePrune: disable})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAngleOrdering isolates the Section V-C top-2 angle
// classes against keeping every angle (DESIGN.md §6.2).
func BenchmarkAblationAngleOrdering(b *testing.B) {
	g := benchDatasets(b)["abide"].G
	for _, all := range []bool{false, true} {
		name := "top2-classes"
		if all {
			name = "all-angles"
		}
		all := all
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.OS(g, core.OSOptions{Trials: benchTrials, Seed: uint64(i + 1), KeepAllAngles: all})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLazySampling isolates Algorithm 5's lazy edge sampling
// against eagerly sampling every candidate edge per trial (DESIGN.md
// §6.3), and the early weight break (§6.4).
func BenchmarkAblationLazySampling(b *testing.B) {
	g := benchDatasets(b)["movielens"].G
	cands, err := core.PrepareCandidates(g, benchPrepTrials, 1, core.OSOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		opt  core.OptimizedOptions
	}{
		{"lazy", core.OptimizedOptions{}},
		{"eager", core.OptimizedOptions{EagerSampling: true}},
		{"no-early-break", core.OptimizedOptions{DisableEarlyBreak: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := c.opt
				opt.Trials = benchTrials * 4
				opt.Seed = uint64(i + 1)
				if _, err := core.EstimateOptimized(cands, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRNG builds a deterministic generator for vertex subsampling.
func benchRNG(seed uint64) *randx.RNG { return randx.New(seed) }
