package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// buildMeshGraph writes a graph whose OS runs are slow enough that a
// drain reliably interrupts them.
func buildMeshGraph(t *testing.T, dir, name string) *mpmb.Graph {
	t.Helper()
	const nl, nr = 40, 40
	b := mpmb.NewBuilder(nl, nr)
	for u := 0; u < nl; u++ {
		for k := 0; k < 8; k++ {
			v := (u*7 + k*5) % nr
			w := float64(1 + (u*13+v*29)%50)
			p := 0.2 + 0.6*float64((u*31+v*17)%100)/100
			b.AddEdge(uint32(u), uint32(v), w, p)
		}
	}
	g := b.Build()
	if err := mpmb.SaveGraph(filepath.Join(dir, name), g); err != nil {
		t.Fatal(err)
	}
	return g
}

// syncBuffer is a bytes.Buffer safe to poll while the exec machinery's
// copier goroutine writes into it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHelperServeProcess is not a test: it is the daemon body for the
// drain tests, re-executed from the test binary with MPMB_SERVE_HELPER=1.
func TestHelperServeProcess(t *testing.T) {
	if os.Getenv("MPMB_SERVE_HELPER") != "1" {
		t.Skip("helper process body")
	}
	sep := 0
	for i, a := range os.Args {
		if a == "--" {
			sep = i
		}
	}
	if err := run(os.Args[sep+1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// startDaemon launches the helper daemon and waits for its listen line.
func startDaemon(t *testing.T, graphs, state string) (*exec.Cmd, *syncBuffer, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperServeProcess", "--",
		"-addr", "127.0.0.1:0", "-graphs", graphs, "-state", state,
		"-workers", "1", "-checkpoint-every", "25ms", "-drain-grace", "500ms")
	cmd.Env = append(os.Environ(), "MPMB_SERVE_HELPER=1")
	var out syncBuffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return cmd, &out, "http://" + m[1]
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon never announced its listener:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getStatus(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestServeDrainOnSIGTERM is the full fault-tolerance round trip through
// the real binary: a running job survives SIGTERM as a checkpoint,
// /readyz flips to 503 while the listener still answers, the process
// exits cleanly, and a restarted daemon finishes the job bit-identically
// to a run that was never interrupted.
func TestServeDrainOnSIGTERM(t *testing.T) {
	graphs := t.TempDir()
	state := t.TempDir()
	g := buildMeshGraph(t, graphs, "mesh.graph")
	// Sized so the job long outlives the first 25ms checkpoint slice but
	// still resumes to completion quickly, even under -race.
	const trials = 400_000

	// Reference: the same search, in-process, never interrupted.
	ref, err := mpmb.Search(g, mpmb.Options{Method: mpmb.MethodOS, Trials: trials, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	cmd, out, base := startDaemon(t, graphs, state)

	body, _ := json.Marshal(map[string]any{
		"graph": "mesh.graph", "method": "os", "trials": trials, "seed": 42, "top_k": 5,
	})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || sub.ID == "" {
		t.Fatalf("submission failed: HTTP %d, %v", resp.StatusCode, err)
	}

	// Wait for the first persisted checkpoint so the drain has a prefix
	// to park.
	deadline := time.Now().Add(30 * time.Second)
	for {
		doc := getStatus(t, base, sub.ID)
		if doc["checkpointed"] == true {
			break
		}
		if doc["state"] == "done" {
			t.Fatal("job finished before SIGTERM; grow the fixture")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared; status %v", doc)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if r, err := http.Get(base + "/readyz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("not ready before drain: %v %v", r, err)
	} else {
		r.Body.Close()
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The readiness flip must be observable BEFORE the listener closes:
	// during the drain grace the daemon keeps answering, as 503.
	sawNotReady := false
	for !sawNotReady {
		r, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener closed
		}
		sawNotReady = r.StatusCode == http.StatusServiceUnavailable
		r.Body.Close()
		time.Sleep(2 * time.Millisecond)
	}
	if !sawNotReady {
		t.Fatal("/readyz never served 503 between SIGTERM and listener close")
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly after SIGTERM: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("missing drain confirmation:\n%s", out.String())
	}

	// The state dir holds the suspended job: manifest + checkpoint.
	ckpt := filepath.Join(state, "checkpoints", sub.ID+".ckpt")
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint missing or empty after drain: %v", err)
	}
	mdata, err := os.ReadFile(filepath.Join(state, "jobs", sub.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(mdata, &man); err != nil {
		t.Fatal(err)
	}
	if man.State != "suspended" {
		t.Fatalf("manifest state %q after drain, want suspended", man.State)
	}

	// Restart over the same state: the daemon must resume and finish the
	// job without being asked.
	cmd2, out2, base2 := startDaemon(t, graphs, state)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	deadline = time.Now().Add(120 * time.Second)
	for {
		doc := getStatus(t, base2, sub.ID)
		if doc["state"] == "done" {
			if doc["resumed"] != true {
				t.Fatal("finished job not marked resumed")
			}
			break
		}
		if doc["state"] == "failed" {
			t.Fatalf("resumed job failed: %v\n%s", doc["error"], out2.String())
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished; status %v", doc)
		}
		time.Sleep(10 * time.Millisecond)
	}

	rresp, err := http.Get(base2 + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var res struct {
		Trials  int  `json:"trials"`
		Partial bool `json:"partial"`
		Top     []struct {
			U1, U2, V1, V2 uint32
			Weight, P      float64
		} `json:"top"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Trials != trials {
		t.Fatalf("resumed result partial=%v trials=%d, want complete %d", res.Partial, res.Trials, trials)
	}
	want := ref.TopK(5)
	if len(res.Top) != len(want) {
		t.Fatalf("%d top entries, want %d", len(res.Top), len(want))
	}
	for i, e := range want {
		got := res.Top[i]
		if got.U1 != e.B.U1 || got.U2 != e.B.U2 || got.V1 != e.B.V1 || got.V2 != e.B.V2 ||
			got.Weight != e.Weight || got.P != e.P {
			t.Fatalf("top[%d] = %+v, want %+v — kill/restart broke bit-identity", i, got, e)
		}
	}
}

// TestRunFlagErrors: the binary fails fast on bad flags, naming the
// problem.
func TestRunFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil || !strings.Contains(err.Error(), "-state") {
		t.Fatalf("missing -state not reported: %v", err)
	}
	if err := run([]string{"-state", t.TempDir(), "-bogus"}, &sb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunAddrBindFailure: a taken -addr fails startup with the address
// in the message — same fail-fast contract as mpmb-search's
// -metrics-addr.
func TestRunAddrBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	taken := ln.Addr().String()
	var sb strings.Builder
	err = run([]string{"-state", t.TempDir(), "-graphs", t.TempDir(), "-addr", taken}, &sb)
	if err == nil {
		t.Fatalf("bind failure on %s not surfaced", taken)
	}
	if !strings.Contains(err.Error(), taken) {
		t.Fatalf("error %q does not name the address %s", err, taken)
	}
}
