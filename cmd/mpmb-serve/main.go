// Command mpmb-serve is the always-on MPMB search service: a
// fault-tolerant, multi-tenant HTTP daemon over the library's search
// engine.
//
// Usage:
//
//	mpmb-serve -graphs ./graphs -state ./state -addr :8080
//	mpmb-serve -graphs ./graphs -state ./state -workers 4 -queue 128
//	mpmb-serve -graphs ./graphs -state ./state -checkpoint-every 10s
//
// Clients submit jobs over JSON, poll status, stream progress events,
// cancel, and fetch results:
//
//	curl -XPOST :8080/v1/jobs -H 'X-Tenant: alice' \
//	     -d '{"graph":"movielens.graph","trials":1000000,"seed":7}'
//	curl :8080/v1/jobs/<id>            # status + live metrics
//	curl :8080/v1/jobs/<id>/events     # NDJSON progress stream
//	curl -XPOST :8080/v1/jobs/<id>/cancel
//	curl :8080/v1/jobs/<id>/result
//
// Robustness is the point, not a feature flag. Admission is bounded (a
// full queue or an exhausted per-tenant trial budget answers 429 with a
// Retry-After hint), each tenant gets a concurrency cap plus a
// token-bucket trial budget, every job runs isolated behind a panic
// shield with its own observer and event stream, and running jobs
// checkpoint periodically through the retrying checkpoint store. On
// SIGTERM/SIGINT the daemon stops admission (/readyz flips to 503),
// lets in-flight jobs finish for -drain-grace, checkpoints whatever
// still runs, and exits; restarting with the same -state resumes the
// interrupted jobs from their checkpoints and finishes them
// bit-identically to runs that were never interrupted — the engine
// derives every trial's randomness from (seed, trial index), so a
// resumed prefix is the same prefix.
//
// /healthz answers liveness, /readyz readiness (not-ready while
// draining), and /metrics serves the daemon's lifecycle counters plus
// the aggregated engine telemetry in Prometheus text format.
//
// Scaling out: -dist mounts the distributed coordinator's /dist/v1
// lease endpoints on the same listener and hands eligible jobs'
// sampling trials to a worker fleet instead of the in-process pool,
// and -worker -join turns an mpmb-serve process into such a worker:
//
//	mpmb-serve -graphs ./graphs -state ./state -dist
//	mpmb-serve -worker -join http://daemon:8080    # on each worker box
//
// Fan-out is exact: a distributed job's Result is bit-identical to the
// same job run locally, even across worker deaths mid-run. The dist
// lease book journals under -state, so a killed daemon replays a
// distributed job's merged prefix on restart; -dist-fallback degrades a
// job to the in-process pool when the fleet stays silent that long
// (recorded as a dist→local transition in the result); and -reconnect
// bounds how long a worker keeps retrying an unreachable daemon.
//
// Retention: -retain-ttl and -retain-max garbage-collect finished jobs
// (result, manifest, event journal) on a background sweep; queued,
// running and suspended jobs are never evicted.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/cliflags"
	"github.com/uncertain-graphs/mpmb/internal/dist"
	"github.com/uncertain-graphs/mpmb/internal/serve"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpmb-serve:", err)
		os.Exit(1)
	}
}

// run parses args and serves until a shutdown signal. Split from main
// for testability; out receives the startup/shutdown status lines the
// helper-process tests synchronize on.
func run(args []string, out io.Writer) error {
	fs := cliflags.New("mpmb-serve")
	var (
		addr   = fs.String("addr", ":8080", "HTTP listen address")
		graphs = fs.String("graphs", ".", "directory job graph names resolve under")
		state  = fs.String("state", "", "state directory for manifests, checkpoints, results (required)")

		queueDepth = fs.Int("queue", 0, "admission queue depth (0 = default 64)")
		workers    = fs.Int("workers", 0, "concurrent jobs (0 = default 2)")
		maxTrials  = fs.Int("max-trials", 0, "reject single jobs above this many total trials (0 = no cap)")

		tenantJobs  = fs.Int("tenant-jobs", 0, "per-tenant active-job cap (0 = default 4)")
		tenantRate  = fs.Float64("tenant-trial-rate", 0, "per-tenant trial-budget refill per second (0 = default 1e6)")
		tenantBurst = fs.Float64("tenant-trial-burst", 0, "per-tenant trial-budget bucket size (0 = default 2e7)")

		ckptEvery  = fs.Duration("checkpoint-every", 0, "periodic job checkpoint interval (0 = default 30s, negative = off)")
		drainGrace = fs.Duration("drain-grace", 0, "how long drain lets jobs finish before suspending them (0 = default 10s)")
		journal    = fs.Bool("journal-events", false, "persist each job's telemetry events as JSONL under the state dir")
		cacheSize  = fs.Int("graph-cache", 0, "graphs kept hot with their prepared candidate caches (0 = default 16)")

		distMode     = fs.Bool("dist", false, "mount the /dist/v1 coordinator and fan eligible jobs' trials out to joined workers")
		distFallback = fs.Duration("dist-fallback", 0, "degrade a distributed job to the in-process pool after the fleet is silent this long (0 = never)")
		worker       = fs.Bool("worker", false, "run as a distributed worker instead of a daemon (requires -join)")
		join         = fs.String("join", "", "coordinator base URL a -worker leases trial ranges from")
		pool         = fs.Int("pool", 0, "worker-mode local pool size per leased range (0 = GOMAXPROCS)")
		reconnect    = fs.Duration("reconnect", 0, "how long a worker keeps trying to reach an unreachable coordinator before giving up (0 = 30s default)")

		retainTTL = fs.Duration("retain-ttl", 0, "evict finished jobs (result, manifest, events) this long after they end (0 = keep forever)")
		retainMax = fs.Int("retain-max", 0, "keep at most this many finished jobs, evicting oldest first (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *worker {
		if *join == "" {
			fs.Usage()
			return fmt.Errorf("-worker requires -join")
		}
		return runWorker(*join, *pool, *reconnect, out)
	}
	if *join != "" {
		return fmt.Errorf("-join only applies to -worker mode")
	}
	if *state == "" {
		fs.Usage()
		return fmt.Errorf("-state is required")
	}

	srv, err := serve.New(serve.Config{
		GraphRoot:        *graphs,
		StateDir:         *state,
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		MaxTrials:        *maxTrials,
		TenantJobs:       *tenantJobs,
		TenantTrialRate:  *tenantRate,
		TenantTrialBurst: *tenantBurst,
		CheckpointEvery:  *ckptEvery,
		DrainGrace:       *drainGrace,
		JournalEvents:    *journal,
		GraphCacheSize:   *cacheSize,
		Dist:             *distMode,
		DistFallback:     *distFallback,
		RetainTTL:        *retainTTL,
		RetainMax:        *retainMax,
	})
	if err != nil {
		return err
	}

	// The same synchronous-bind helper the search CLI uses: a taken port
	// fails the start with the address in the message, instead of a
	// background goroutine losing the error after the daemon came up.
	hs, err := telemetry.ListenAndServe(*addr, srv.Handler())
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(out, "mpmb-serve: listening on %s (state %s, graphs %s)\n", hs.Addr(), *state, *graphs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	signal.Stop(sig)
	fmt.Fprintf(out, "mpmb-serve: %s: draining\n", got)

	// Drain order matters: admission stops and /readyz flips FIRST, so a
	// load balancer sees not-ready while the listener still answers;
	// the listener closes only after the jobs are parked.
	ctx, cancel := context.WithTimeout(context.Background(), srv.DrainBudget())
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		hs.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Close(); err != nil {
		return err
	}
	fmt.Fprintln(out, "mpmb-serve: drained cleanly")
	return nil
}

// runWorker joins a -dist daemon's coordinator and executes leased
// trial ranges until the daemon exits or a shutdown signal arrives.
// Workers are stateless: graphs are fetched and checksum-verified from
// the coordinator, candidate sets rebuilt deterministically from the
// run seed, and abandoned leases reissued to surviving workers.
func runWorker(base string, pool int, reconnect time.Duration, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(out, "mpmb-serve: worker joining %s\n", base)
	w := &dist.Worker{Base: base, Pool: pool, ReconnectMax: reconnect}
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "mpmb-serve: worker done")
	return nil
}
