// Command mpmb-search finds the most probable maximum weighted
// butterflies of an uncertain bipartite network stored in the library's
// text or binary interchange format (see mpmb-gen).
//
// Usage:
//
//	mpmb-search -graph movielens.graph                 # OLS, paper defaults
//	mpmb-search -graph g.graph -method os -trials 50000 -topk 10
//	mpmb-search -graph g.graph -method ols -workers 8  # parallel trials
//	mpmb-search -graph tiny.graph -method exact        # ≤ 24 edges
//	mpmb-search -graph g.graph -disjoint -stats
//
// Long runs degrade gracefully instead of dying: a -timeout expiry or a
// Ctrl-C stops the search at the next trial boundary and reports the
// estimates over the trials completed so far. With -checkpoint the
// cancelled run's accumulator state is saved, and -resume finishes it
// later, bit-identical to a run that was never interrupted:
//
//	mpmb-search -graph big.graph -trials 1000000 -timeout 30s -checkpoint run.ckpt
//	mpmb-search -graph big.graph -trials 1000000 -resume run.ckpt
//
// Adaptive runs add self-healing and accuracy-aware stopping on top:
// -audit-every interleaves full-sampling coverage audits that widen an
// under-prepared OLS candidate set (or fall back to OS when the
// escalation budget runs out), -epsilon stops as soon as the leading
// estimate is tight enough, and -deadline bounds the wall-clock budget
// while still reporting the honest partial result:
//
//	mpmb-search -graph big.graph -method ols -audit-every 1000
//	mpmb-search -graph big.graph -method os -trials 10000000 -epsilon 0.005
//	mpmb-search -graph big.graph -deadline 5m -checkpoint run.ckpt
//
// Observability: -progress repaints a live stderr line (trial rate,
// prune split, leading estimate), -metrics-addr serves Prometheus
// /metrics, expvar /debug/vars and /debug/pprof/ while the run lasts
// (-metrics-hold keeps it up afterwards for a final scrape), and
// -journal appends the run's typed telemetry events as JSON lines,
// replayable with `mpmb-bench journal`:
//
//	mpmb-search -graph big.graph -progress -metrics-addr :9090
//	mpmb-search -graph big.graph -journal run.jsonl
//
// Scaling out: -dist-listen turns the run into a distributed
// coordinator that leases trial ranges to worker processes over HTTP,
// and -join turns an mpmb-search process into such a worker (no -graph
// needed: workers fetch the graph from the coordinator and rebuild
// candidate sets deterministically from the run seed). The fan-out is
// exact — the distributed Result is bit-identical to the sequential
// run with the same seed, even when workers die mid-run:
//
//	mpmb-search -graph big.graph -trials 10000000 -dist-listen :9191
//	mpmb-search -join http://coordinator:9191     # on each worker box
//
// The fan-out is fault-tolerant on both sides: workers retry coordinator
// exchanges with backoff and park in a reconnect loop (bounded by
// -reconnect) when the coordinator goes unreachable, and with
// -dist-journal the coordinator write-ahead journals its lease book so a
// killed coordinator restarted with the same flags replays the merged
// prefix and finishes the run bit-identically:
//
//	mpmb-search -graph big.graph -dist-listen :9191 -dist-journal ./wal
//	mpmb-search -join http://coordinator:9191 -reconnect 2m
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/cliflags"
	"github.com/uncertain-graphs/mpmb/internal/dist"
	"github.com/uncertain-graphs/mpmb/internal/profiling"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpmb-search:", err)
		os.Exit(1)
	}
}

// run parses args and executes the search, writing human-readable results
// to out. Split from main for testability.
func run(args []string, out io.Writer) (retErr error) {
	fs := cliflags.New("mpmb-search")
	var (
		path     = fs.String("graph", "", "input graph file (required)")
		method   = fs.String("method", "ols", "search method: exact, mc-vp, os, ols-kl, ols")
		trials   = fs.Int("trials", 20000, "sampling trials N")
		prep     = fs.Int("prep-trials", 100, "OLS preparing-phase trials")
		seed     = fs.Uint64("seed", 1, "random seed")
		topk     = fs.Int("top-k", 5, "how many butterflies to report")
		mu       = fs.Float64("mu", 0.05, "Equation 8 target probability (ols-kl)")
		disjoint = fs.Bool("disjoint", false, "report vertex-disjoint butterflies (scattered view)")
		stats    = fs.Bool("stats", false, "also print butterfly-count statistics")
		workers  = fs.Int("workers", 0, "parallel workers for os/ols/ols-kl (0 = sequential)")
		timeout  = fs.Duration("timeout", 0, "stop after this long and report partial results (0 = no limit)")
		ckpt     = fs.String("checkpoint", "", "write a cancelled run's resumable state to this file")
		resume   = fs.String("resume", "", "resume a cancelled run from this checkpoint file")
		jsonOut  = fs.String("json", "", "also write the reported butterflies as JSON to this file")

		distListen  = fs.String("dist-listen", "", "coordinate a distributed run: lease trial ranges to workers joining on this address")
		distJournal = fs.String("dist-journal", "", "journal the coordinator's lease book under this directory; a killed coordinator restarted with the same flags resumes from the merged prefix")
		join        = fs.String("join", "", "run as a distributed worker for the coordinator at this base URL (no -graph needed)")
		reconnect   = fs.Duration("reconnect", 0, "how long a worker keeps trying to reach an unreachable coordinator before giving up (0 = 30s default)")

		auditEvery = fs.Int("audit-every", 0, "interleave a coverage audit every N OLS sampling trials (0 = off)")
		maxEsc     = fs.Int("max-escalations", 0, "audit escalations before falling back to os (0 = default)")
		epsilon    = fs.Float64("epsilon", 0, "stop once the leader estimate's half-width is ≤ this (0 = off)")
		deadline   = fs.Duration("deadline", 0, "wall-clock budget; stop at the trial boundary past it (0 = off)")
		stall      = fs.Duration("stall-timeout", 0, "fail with a stall error after this long without progress (0 = off)")

		tele  = fs.TelemetryFlags()
		query = fs.QueryFlags()
	)
	cpuProfile, memProfile := fs.Profiling()
	// Old spellings keep parsing, hidden from -help.
	fs.Alias("prep", "prep-trials")
	fs.Alias("topk", "top-k")
	// Map Options fields back to the flags that set them, so validation
	// errors name a flag.
	for field, fl := range map[string]string{
		"Method": "method", "Trials": "trials", "PrepTrials": "prep-trials",
		"Mu": "mu", "Workers": "workers", "AuditEvery": "audit-every",
		"MaxEscalations": "max-escalations", "Epsilon": "epsilon",
		"Deadline": "deadline", "StallTimeout": "stall-timeout",
	} {
		fs.Field(field, fl)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *join != "" {
		if *distListen != "" {
			return fmt.Errorf("-join and -dist-listen are mutually exclusive: a process is a worker or a coordinator, not both")
		}
		return runWorker(*join, *workers, *reconnect, out)
	}
	if *path == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	g, err := mpmb.LoadGraph(*path)
	if err != nil {
		return err
	}
	tr, err := startTelemetry(tele, telemetryStatusW)
	if err != nil {
		return err
	}
	defer func() {
		if terr := tr.finish(); terr != nil && retErr == nil {
			retErr = terr
		}
	}()
	fmt.Fprintf(out, "loaded %s: |L|=%d |R|=%d |E|=%d\n", *path, g.NumL(), g.NumR(), g.NumEdges())
	if *stats {
		fmt.Fprintf(out, "backbone butterflies: %d; expected per world: %.2f\n",
			mpmb.CountButterflies(g), mpmb.ExpectedButterflies(g))
	}

	opt := mpmb.Options{
		Method:         mpmb.Method(*method),
		Trials:         *trials,
		PrepTrials:     *prep,
		Seed:           *seed,
		Mu:             *mu,
		Workers:        *workers,
		AuditEvery:     *auditEvery,
		MaxEscalations: *maxEsc,
		Epsilon:        *epsilon,
		StallTimeout:   *stall,
		Observer:       tr.Observer(),
	}
	if *deadline > 0 {
		opt.Deadline = time.Now().Add(*deadline)
	}
	if opt.Query, err = query.Build(); err != nil {
		return err
	}
	if *distListen != "" {
		coord := dist.NewCoordinator()
		if *distJournal != "" {
			coord.Journal = &dist.Journal{Dir: *distJournal}
		}
		hs, err := telemetry.ListenAndServe(*distListen, coord.Handler())
		if err != nil {
			return err
		}
		defer hs.Close()
		fmt.Fprintf(out, "dist: coordinating on %s\n", hs.Addr())
		opt.Executor = &dist.Executor{C: coord}
	} else if *distJournal != "" {
		return fmt.Errorf("-dist-journal requires -dist-listen")
	}
	// Checkpoint I/O goes through the retrying store: transient failures
	// on flaky volumes back off and retry instead of losing the run.
	store := mpmb.NewCheckpointStore(mpmb.DefaultRetryPolicy())
	tr.Observer().InstrumentStore(store)
	if *resume != "" {
		ck, err := store.Load(*resume)
		if err != nil {
			return fmt.Errorf("loading checkpoint: %w", err)
		}
		opt.Resume = ck
	}

	// Ctrl-C, SIGTERM and -timeout all cancel the context; the search then
	// stops at the next trial boundary and returns the completed prefix.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	t0 := time.Now()
	res, err := mpmb.SearchContext(ctx, g, opt)
	if err != nil {
		return fs.DecorateError(err)
	}
	elapsed := time.Since(t0)

	if res.PrepTrials > 0 {
		fmt.Fprintf(out, "method=%s trials=%d (+%d preparing) time=%v\n",
			res.Method, res.Trials, res.PrepTrials, elapsed.Round(time.Millisecond))
	} else {
		fmt.Fprintf(out, "method=%s trials=%d time=%v\n", res.Method, res.Trials, elapsed.Round(time.Millisecond))
	}
	if ad := res.Adaptive; ad != nil {
		fmt.Fprintf(out, "adaptive: stop=%s", ad.StopReason)
		if ad.HalfWidth > 0 {
			fmt.Fprintf(out, " half-width=%.5f", ad.HalfWidth)
		}
		if ad.Audits > 0 {
			fmt.Fprintf(out, " audits=%d escalations=%d", ad.Audits, ad.Escalations)
		}
		fmt.Fprintf(out, " final-method=%s\n", ad.FinalMethod)
		for _, tr := range ad.Transitions {
			fmt.Fprintf(out, "adaptive: transition %s -> %s (%s, at trial %d)\n", tr.From, tr.To, tr.Reason, tr.AtTrial)
		}
		if s := ad.PrepSizing; s != nil {
			mode := fmt.Sprintf("sampled %d edges", s.SampledEdges)
			if s.Exhaustive {
				mode = "exhaustive"
			}
			fmt.Fprintf(out, "prep-sizing: expected-butterflies=%.4g prep-trials=%d entry=%s (%s pre-pass)\n",
				s.ExpectedButterflies, s.PrepTrials, s.EntryMethod, mode)
		}
	}
	if len(res.Communities) > 0 {
		fmt.Fprintf(out, "per-community results (%d communities):\n", len(res.Communities))
		for _, cr := range res.Communities {
			if best, ok := cr.Result.Best(); ok {
				fmt.Fprintf(out, "  community %-4d %-20s weight=%-10.4g P̂=%.4f (%d estimates)\n",
					cr.Community, best.B, best.Weight, best.P, len(cr.Result.Estimates))
			} else {
				fmt.Fprintf(out, "  community %-4d no butterfly was ever maximum\n", cr.Community)
			}
		}
	}
	if res.Partial {
		fmt.Fprintf(out, "stopped after %d/%d trials; estimates cover the completed prefix\n",
			res.TrialsDone, res.Trials)
		if *ckpt != "" {
			if res.Checkpoint == nil {
				fmt.Fprintf(out, "method %s has no resumable state; re-run to completion\n", res.Method)
			} else if err := store.Save(*ckpt, res.Checkpoint); err != nil {
				return fmt.Errorf("saving checkpoint: %w", err)
			} else {
				fmt.Fprintf(out, "checkpoint saved to %s (finish with -resume %s)\n", *ckpt, *ckpt)
			}
		}
	}

	top := res.TopK(*topk)
	if *disjoint {
		top = res.TopKDisjoint(*topk)
	}
	if len(top) == 0 {
		fmt.Fprintln(out, "no butterfly was ever maximum in a sampled world")
		return nil
	}
	kind := "most probable maximum weighted butterflies"
	if *disjoint {
		kind = "vertex-disjoint " + kind
	}
	fmt.Fprintf(out, "top-%d %s:\n", len(top), kind)
	for i, e := range top {
		fmt.Fprintf(out, "  #%-2d %-20s weight=%-10.4g P̂=%.4f\n", i+1, e.B, e.Weight, e.P)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res, top); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonOut)
	}
	return nil
}

// runWorker joins a coordinator and executes leased trial ranges until
// the coordinator exits (the normal end of a run) or a shutdown signal
// arrives. Workers carry no run state of their own: the graph is
// fetched and checksum-verified from the coordinator, candidate sets
// are rebuilt deterministically from the run seed, and an abandoned
// lease is simply reissued to another worker.
func runWorker(base string, pool int, reconnect time.Duration, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(out, "dist: worker joining %s\n", base)
	w := &dist.Worker{Base: base, Pool: pool, ReconnectMax: reconnect}
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "dist: worker done")
	return nil
}

// writeJSON dumps the search metadata and reported butterflies.
func writeJSON(path string, res *mpmb.Result, top []mpmb.Estimate) error {
	type jsonButterfly struct {
		U1, U2, V1, V2 uint32
		Weight         float64
		P              float64
	}
	doc := struct {
		Method      string                 `json:"method"`
		Trials      int                    `json:"trials"`
		PrepTrials  int                    `json:"prep_trials,omitempty"`
		Partial     bool                   `json:"partial,omitempty"`
		TrialsDone  int                    `json:"trials_done,omitempty"`
		Adaptive    *mpmb.AdaptiveReport   `json:"adaptive,omitempty"`
		Metrics     *mpmb.Metrics          `json:"metrics,omitempty"`
		Communities []mpmb.CommunityResult `json:"communities,omitempty"`
		Top         []jsonButterfly        `json:"top"`
	}{Method: res.Method, Trials: res.Trials, PrepTrials: res.PrepTrials, Partial: res.Partial, Adaptive: res.Adaptive, Metrics: res.Metrics, Communities: res.Communities}
	if res.Partial {
		doc.TrialsDone = res.TrialsDone
	}
	for _, e := range top {
		doc.Top = append(doc.Top, jsonButterfly{
			U1: e.B.U1, U2: e.B.U2, V1: e.B.V1, V2: e.B.V2,
			Weight: e.Weight, P: e.P,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
