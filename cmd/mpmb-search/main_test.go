package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// writeFigure1 saves the paper's running example for CLI tests.
func writeFigure1(t *testing.T) string {
	t.Helper()
	b := mpmb.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 2, 0.6)
	b.MustAddEdge(0, 2, 1, 0.8)
	b.MustAddEdge(1, 0, 3, 0.3)
	b.MustAddEdge(1, 1, 3, 0.4)
	b.MustAddEdge(1, 2, 1, 0.7)
	path := filepath.Join(t.TempDir(), "fig1.graph")
	if err := mpmb.SaveGraph(path, b.Build()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllMethods(t *testing.T) {
	path := writeFigure1(t)
	for _, method := range []string{"exact", "mc-vp", "os", "ols-kl", "ols"} {
		var sb strings.Builder
		err := run([]string{"-graph", path, "-method", method, "-trials", "5000", "-topk", "2"}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		out := sb.String()
		if !strings.Contains(out, "loaded") || !strings.Contains(out, "top-2") {
			t.Fatalf("%s: unexpected output:\n%s", method, out)
		}
		// The MPMB of Figure 1 is B(0,1|1,2) for every correct method.
		if !strings.Contains(out, "#1  B(0,1|1,2)") {
			t.Fatalf("%s: wrong MPMB:\n%s", method, out)
		}
	}
}

func TestRunStatsDisjointAndWorkers(t *testing.T) {
	path := writeFigure1(t)
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "os", "-trials", "3000",
		"-stats", "-disjoint", "-workers", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "backbone butterflies: 3") {
		t.Fatalf("missing stats:\n%s", out)
	}
	if !strings.Contains(out, "vertex-disjoint") {
		t.Fatalf("missing disjoint marker:\n%s", out)
	}
	// All Figure 1 butterflies share u1,u2: disjoint top-k has one entry.
	if strings.Contains(out, "#2") {
		t.Fatalf("disjoint selection returned overlapping butterflies:\n%s", out)
	}
}

func TestRunSearchErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("missing -graph accepted")
	}
	if err := run([]string{"-graph", "nope.graph"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeFigure1(t)
	if err := run([]string{"-graph", path, "-method", "bogus"}, &sb); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := run([]string{"-graph", path, "-trials", "0"}, &sb); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeFigure1(t)
	jsonPath := filepath.Join(t.TempDir(), "res.json")
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "exact", "-topk", "3", "-json", jsonPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Method string `json:"method"`
		Top    []struct {
			U1, U2, V1, V2 uint32
			Weight, P      float64
		} `json:"top"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Method != "exact" || len(doc.Top) != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Top[0].Weight != 7 {
		t.Fatalf("top butterfly weight %v, want 7", doc.Top[0].Weight)
	}
}
