package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// writeFigure1 saves the paper's running example for CLI tests.
func writeFigure1(t *testing.T) string {
	t.Helper()
	b := mpmb.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 2, 0.6)
	b.MustAddEdge(0, 2, 1, 0.8)
	b.MustAddEdge(1, 0, 3, 0.3)
	b.MustAddEdge(1, 1, 3, 0.4)
	b.MustAddEdge(1, 2, 1, 0.7)
	path := filepath.Join(t.TempDir(), "fig1.graph")
	if err := mpmb.SaveGraph(path, b.Build()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllMethods(t *testing.T) {
	path := writeFigure1(t)
	for _, method := range []string{"exact", "mc-vp", "os", "ols-kl", "ols"} {
		var sb strings.Builder
		err := run([]string{"-graph", path, "-method", method, "-trials", "5000", "-topk", "2"}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		out := sb.String()
		if !strings.Contains(out, "loaded") || !strings.Contains(out, "top-2") {
			t.Fatalf("%s: unexpected output:\n%s", method, out)
		}
		// The MPMB of Figure 1 is B(0,1|1,2) for every correct method.
		if !strings.Contains(out, "#1  B(0,1|1,2)") {
			t.Fatalf("%s: wrong MPMB:\n%s", method, out)
		}
	}
}

func TestRunStatsDisjointAndWorkers(t *testing.T) {
	path := writeFigure1(t)
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "os", "-trials", "3000",
		"-stats", "-disjoint", "-workers", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "backbone butterflies: 3") {
		t.Fatalf("missing stats:\n%s", out)
	}
	if !strings.Contains(out, "vertex-disjoint") {
		t.Fatalf("missing disjoint marker:\n%s", out)
	}
	// All Figure 1 butterflies share u1,u2: disjoint top-k has one entry.
	if strings.Contains(out, "#2") {
		t.Fatalf("disjoint selection returned overlapping butterflies:\n%s", out)
	}
}

func TestRunSearchErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("missing -graph accepted")
	}
	if err := run([]string{"-graph", "nope.graph"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeFigure1(t)
	if err := run([]string{"-graph", path, "-method", "bogus"}, &sb); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := run([]string{"-graph", path, "-trials", "0"}, &sb); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// TestRunTimeoutCheckpointResume exercises the graceful-degradation flow
// end to end through the CLI: a -timeout cancels the run, -checkpoint
// persists its state, and -resume finishes it with JSON output
// byte-identical to a run that was never interrupted.
func TestRunTimeoutCheckpointResume(t *testing.T) {
	path := writeFigure1(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	common := []string{"-graph", path, "-method", "os", "-trials", "30000", "-seed", "7"}

	// Reference: the same search, never interrupted.
	refJSON := filepath.Join(dir, "ref.json")
	var sb strings.Builder
	if err := run(append(common, "-json", refJSON), &sb); err != nil {
		t.Fatal(err)
	}

	// A 1ns timeout is guaranteed to expire before the first trial, so the
	// cancelled run is deterministic: partial, zero trials done.
	sb.Reset()
	err := run(append(common, "-timeout", "1ns", "-checkpoint", ckpt), &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "stopped after") {
		t.Fatalf("timed-out run not reported as stopped:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint saved to "+ckpt) {
		t.Fatalf("checkpoint not saved:\n%s", out)
	}

	// Resuming finishes the run; the JSON report must match the reference
	// byte for byte.
	resJSON := filepath.Join(dir, "resumed.json")
	sb.Reset()
	if err := run(append(common, "-resume", ckpt, "-json", resJSON), &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "stopped after") {
		t.Fatalf("resumed run still partial:\n%s", sb.String())
	}
	ref, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	res, err := os.ReadFile(resJSON)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(res) {
		t.Fatalf("resumed JSON differs from uninterrupted run:\nref:     %s\nresumed: %s", ref, res)
	}
}

// TestRunExactNoCheckpoint: exact has no resumable state; the CLI says so
// instead of writing a useless file.
func TestRunExactNoCheckpoint(t *testing.T) {
	path := writeFigure1(t)
	ckpt := filepath.Join(t.TempDir(), "exact.ckpt")
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "exact",
		"-timeout", "1ns", "-checkpoint", ckpt}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no resumable state") {
		t.Fatalf("missing no-resumable-state notice:\n%s", sb.String())
	}
	if _, err := os.Stat(ckpt); err == nil {
		t.Fatal("checkpoint file written for exact method")
	}
}

// TestRunWorkersRejected: -workers must be an explicit error for methods
// with no parallel runner, not a silently ignored flag.
func TestRunWorkersRejected(t *testing.T) {
	path := writeFigure1(t)
	for _, method := range []string{"mc-vp", "exact"} {
		var sb strings.Builder
		err := run([]string{"-graph", path, "-method", method, "-workers", "2"}, &sb)
		if err == nil {
			t.Fatalf("%s: -workers 2 accepted", method)
		}
		if !strings.Contains(err.Error(), "parallel") {
			t.Fatalf("%s: unhelpful error: %v", method, err)
		}
	}
}

// TestRunResumeErrors covers checkpoint-file failure modes at the CLI
// boundary: missing file and a checkpoint from a mismatched run.
func TestRunResumeErrors(t *testing.T) {
	path := writeFigure1(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-resume", "missing.ckpt"}, &sb); err == nil {
		t.Fatal("missing checkpoint file accepted")
	}
	// Produce a valid checkpoint with seed 7, then resume under seed 8.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	err := run([]string{"-graph", path, "-method", "os", "-trials", "30000",
		"-seed", "7", "-timeout", "1ns", "-checkpoint", ckpt}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-graph", path, "-method", "os", "-trials", "30000",
		"-seed", "8", "-resume", ckpt}, &sb)
	if err == nil {
		t.Fatal("checkpoint resumed under a different seed")
	}
}

// TestHelperSearchProcess is not a test: it is the subprocess body for the
// signal tests, re-executed from the test binary with
// MPMB_SEARCH_HELPER=1. It runs an effectively unbounded search so the
// parent can interrupt it with a signal.
func TestHelperSearchProcess(t *testing.T) {
	if os.Getenv("MPMB_SEARCH_HELPER") != "1" {
		t.Skip("helper process body")
	}
	args := os.Args[len(os.Args)-4:] // -graph <path> -checkpoint <path>
	err := run(append(args, "-method", "os", "-trials", "1000000000", "-seed", "7"), os.Stdout)
	if err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// syncBuffer is a bytes.Buffer safe to poll from the test while the
// exec machinery's copier goroutine writes the child's output into it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// signalStopsSearch runs the helper process and delivers sig once the
// search has started; the CLI must trap it, stop at a trial boundary, save
// the checkpoint and exit 0 with partial results.
func signalStopsSearch(t *testing.T, sig os.Signal) {
	t.Helper()
	path := writeFigure1(t)
	ckpt := filepath.Join(t.TempDir(), "sig.ckpt")
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperSearchProcess", "--",
		"-graph", path, "-checkpoint", ckpt)
	cmd.Env = append(os.Environ(), "MPMB_SEARCH_HELPER=1")
	var outBuf syncBuffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &outBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the search to actually start (the graph-loaded banner),
	// then signal.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(outBuf.String(), "loaded") {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("helper never started:\n%s", outBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let it get into the sampling loop
	if err := cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper did not exit cleanly after %v: %v\n%s", sig, err, outBuf.String())
	}
	out := outBuf.String()
	if !strings.Contains(out, "stopped after") {
		t.Fatalf("%v did not produce a graceful partial result:\n%s", sig, out)
	}
	if !strings.Contains(out, "checkpoint saved to") {
		t.Fatalf("%v run saved no checkpoint:\n%s", sig, out)
	}
	if _, err := mpmb.LoadCheckpoint(ckpt); err != nil {
		t.Fatalf("checkpoint written on %v does not load: %v", sig, err)
	}
}

func TestRunSIGTERMGraceful(t *testing.T) { signalStopsSearch(t, syscall.SIGTERM) }
func TestRunSIGINTGraceful(t *testing.T)  { signalStopsSearch(t, os.Interrupt) }

// TestRunAdaptiveFlags drives the new adaptive flags end to end through
// the CLI: -epsilon stops early and reports the achieved half-width,
// -audit-every reports its audit tally, and both land in the JSON output.
func TestRunAdaptiveFlags(t *testing.T) {
	path := writeFigure1(t)
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "os", "-trials", "100000000",
		"-epsilon", "0.05", "-seed", "7"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "adaptive: stop=epsilon") || !strings.Contains(out, "half-width=") {
		t.Fatalf("missing epsilon-stop report:\n%s", out)
	}

	jsonPath := filepath.Join(t.TempDir(), "adaptive.json")
	sb.Reset()
	err = run([]string{"-graph", path, "-method", "ols", "-trials", "4000",
		"-audit-every", "500", "-json", jsonPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "audits=") {
		t.Fatalf("missing audit tally:\n%s", sb.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Adaptive *mpmb.AdaptiveReport `json:"adaptive"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Adaptive == nil || doc.Adaptive.StopReason != mpmb.StopCompleted || doc.Adaptive.Audits == 0 {
		t.Fatalf("JSON adaptive report = %+v", doc.Adaptive)
	}

	sb.Reset()
	if err := run([]string{"-graph", path, "-method", "os", "-audit-every", "10"}, &sb); err == nil {
		t.Fatal("-audit-every accepted for a non-OLS method")
	}
}

// TestRunDeadlineFlag: -deadline bounds the run and reports the honest
// partial prefix with a deadline stop reason.
func TestRunDeadlineFlag(t *testing.T) {
	path := writeFigure1(t)
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "os", "-trials", "1000000000",
		"-deadline", "100ms"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "adaptive: stop=deadline") {
		t.Fatalf("missing deadline stop:\n%s", out)
	}
	if !strings.Contains(out, "stopped after") {
		t.Fatalf("deadline run not partial:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeFigure1(t)
	jsonPath := filepath.Join(t.TempDir(), "res.json")
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "exact", "-topk", "3", "-json", jsonPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Method string `json:"method"`
		Top    []struct {
			U1, U2, V1, V2 uint32
			Weight, P      float64
		} `json:"top"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Method != "exact" || len(doc.Top) != 3 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Top[0].Weight != 7 {
		t.Fatalf("top butterfly weight %v, want 7", doc.Top[0].Weight)
	}
}

// TestRunProfileFlags: -cpuprofile/-memprofile must leave non-empty
// pprof files behind after a normal search run.
func TestRunProfileFlags(t *testing.T) {
	path := writeFigure1(t)
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.out"), filepath.Join(dir, "mem.out")
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "os", "-trials", "2000",
		"-cpuprofile", cpu, "-memprofile", mem}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	// An unwritable profile path is a startup error, before any search.
	if err := run([]string{"-graph", path, "-cpuprofile", filepath.Join(dir, "no", "dir", "c.out")}, &sb); err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
}
