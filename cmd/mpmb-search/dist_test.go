package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/dist"
)

// distTrials sizes the distributed CLI tests: long enough that a
// coordinator is reliably mid-run when the test kills a worker or
// delivers SIGTERM, short enough for CI.
const distTrials = 300000

// writeDistMesh saves a graph big enough that distTrials take a few
// seconds sequentially, so mid-run process faults land mid-run.
func writeDistMesh(t *testing.T) string {
	t.Helper()
	const nl, nr = 40, 40
	b := mpmb.NewBuilder(nl, nr)
	for u := 0; u < nl; u++ {
		for k := 0; k < 10; k++ {
			v := (u*11 + k*7) % nr
			w := float64(1 + (u*13+v*29)%50)
			p := 0.2 + 0.6*float64((u*31+v*17)%100)/100
			b.AddEdge(uint32(u), uint32(v), w, p)
		}
	}
	path := filepath.Join(t.TempDir(), "mesh.graph")
	if err := mpmb.SaveGraph(path, b.Build()); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestHelperDistProcess is the subprocess body for the distributed CLI
// tests: it forwards everything after "--" straight to run, so the same
// helper serves as a real coordinator binary and a real worker binary.
func TestHelperDistProcess(t *testing.T) {
	if os.Getenv("MPMB_DIST_HELPER") != "1" {
		t.Skip("helper process body")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startDistHelper launches the test binary as a real mpmb-search
// process with the given CLI args and returns its output buffer.
func startDistHelper(t *testing.T, args ...string) (*exec.Cmd, *syncBuffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-test.run=TestHelperDistProcess", "--"}, args...)...)
	cmd.Env = append(os.Environ(), "MPMB_DIST_HELPER=1")
	var buf syncBuffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, &buf
}

// awaitOutput polls a child's output until re matches or the deadline
// passes, returning the first submatch.
func awaitOutput(t *testing.T, cmd *exec.Cmd, buf *syncBuffer, re *regexp.Regexp, what string) string {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("%s never appeared:\n%s", what, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var coordAddrRE = regexp.MustCompile(`dist: coordinating on (\S+)`)

// TestDistRealBinariesKillWorker is the acceptance bar run through real
// processes: a coordinator binary plus three worker binaries, one of
// which is SIGKILLed mid-run. The surviving fleet must finish and the
// coordinator's JSON report must be byte-identical to a plain
// sequential run of the same search.
func TestDistRealBinariesKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	graph := writeDistMesh(t)
	dir := t.TempDir()
	common := []string{"-graph", graph, "-method", "os",
		"-trials", strconv.Itoa(distTrials), "-seed", "7"}

	// Sequential reference, in-process.
	refJSON := filepath.Join(dir, "ref.json")
	var sb strings.Builder
	if err := run(append(common, "-json", refJSON), &sb); err != nil {
		t.Fatal(err)
	}

	gotJSON := filepath.Join(dir, "dist.json")
	coord, coordOut := startDistHelper(t, append(common,
		"-dist-listen", "127.0.0.1:0", "-json", gotJSON)...)
	defer coord.Process.Kill()
	base := "http://" + awaitOutput(t, coord, coordOut, coordAddrRE, "coordinator address")

	workers := make([]*exec.Cmd, 3)
	outs := make([]*syncBuffer, 3)
	for i := range workers {
		// A short -reconnect keeps the test fast: once the coordinator
		// exits, survivors give up after ~1s instead of the 30s default.
		workers[i], outs[i] = startDistHelper(t, "-join", base, "-reconnect", "1s")
		defer workers[i].Process.Kill()
	}
	for i, out := range outs {
		awaitOutput(t, workers[i], out, regexp.MustCompile(`(dist: worker joining \S+)`), "worker banner")
	}

	// Let the fleet get into the run, then SIGKILL one worker. The
	// coordinator must not have finished yet, or the kill proves nothing.
	time.Sleep(300 * time.Millisecond)
	if strings.Contains(coordOut.String(), "top-") {
		t.Fatalf("run finished before the worker kill; raise distTrials\n%s", coordOut.String())
	}
	if err := workers[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workers[0].Wait()

	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator failed after worker kill: %v\n%s", err, coordOut.String())
	}
	if strings.Contains(coordOut.String(), "stopped after") {
		t.Fatalf("coordinator reported a partial run:\n%s", coordOut.String())
	}
	// Surviving workers exit on their own once the coordinator is gone.
	for _, w := range workers[1:] {
		if err := w.Wait(); err != nil {
			t.Errorf("surviving worker exited with %v", err)
		}
	}

	ref, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotJSON)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(got) {
		t.Fatalf("distributed JSON differs from sequential after worker kill:\nref:  %s\ndist: %s", ref, got)
	}
}

// TestDistCoordinatorSIGKILLJournalReplay is the crash-recovery
// acceptance bar through real processes: a journaling coordinator binary
// is SIGKILLed mid-run — no drain, no checkpoint — and restarted with
// the same address, journal directory and flags. The journal replay must
// resume the run where the dead epoch's write-ahead records left it, the
// parked workers must reconnect to the successor, and the final JSON
// report must be byte-identical to a plain sequential run.
func TestDistCoordinatorSIGKILLJournalReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	graph := writeDistMesh(t)
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	common := []string{"-graph", graph, "-method", "os",
		"-trials", strconv.Itoa(distTrials), "-seed", "7"}

	refJSON := filepath.Join(dir, "ref.json")
	var sb strings.Builder
	if err := run(append(common, "-json", refJSON), &sb); err != nil {
		t.Fatal(err)
	}

	// Reserve a fixed port so the restarted coordinator comes back at
	// the address the parked workers keep retrying.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	gotJSON := filepath.Join(dir, "dist.json")
	coordArgs := append(common, "-dist-listen", addr, "-dist-journal", jdir, "-json", gotJSON)
	epoch1, out1 := startDistHelper(t, coordArgs...)
	defer epoch1.Process.Kill()
	awaitOutput(t, epoch1, out1, coordAddrRE, "coordinator address")

	// In-process workers with a reconnect window spanning the restart:
	// when the coordinator dies they park, and they resume against its
	// successor at the same address.
	wctx, stopWorkers := context.WithCancel(context.Background())
	var wwg sync.WaitGroup
	defer func() { stopWorkers(); wwg.Wait() }()
	for i := 0; i < 2; i++ {
		w := &dist.Worker{Base: "http://" + addr, Name: fmt.Sprintf("w%d", i),
			Pool: 1, ReconnectMax: 2 * time.Minute}
		wwg.Add(1)
		go func() { defer wwg.Done(); w.Run(wctx) }()
	}

	// Wait until the journal proves real progress — at least two span
	// completions write-ahead persisted — then SIGKILL the coordinator.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if recs, _ := filepath.Glob(filepath.Join(jdir, "*", "complete-*.json")); len(recs) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never recorded progress:\n%s", out1.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if strings.Contains(out1.String(), "top-") {
		t.Fatalf("run finished before the SIGKILL; raise distTrials\n%s", out1.String())
	}
	if err := epoch1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	epoch1.Wait()

	// Same flags, same address, same journal: the successor adopts the
	// dead epoch's records and finishes the run.
	epoch2, out2 := startDistHelper(t, coordArgs...)
	defer epoch2.Process.Kill()
	awaitOutput(t, epoch2, out2, coordAddrRE, "coordinator address")
	if err := epoch2.Wait(); err != nil {
		t.Fatalf("restarted coordinator failed: %v\n%s", err, out2.String())
	}
	if strings.Contains(out2.String(), "stopped after") {
		t.Fatalf("restarted coordinator reported a partial run:\n%s", out2.String())
	}
	stopWorkers()

	ref, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotJSON)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(got) {
		t.Fatalf("SIGKILL+replay JSON differs from sequential:\nref:  %s\ngot: %s", ref, got)
	}
}

var stoppedRE = regexp.MustCompile(`stopped after (\d+)/\d+ trials`)

// TestDistCoordinatorSIGTERMDrain suspends a distributed coordinator
// mid-run with SIGTERM: it must checkpoint the merged prefix and exit
// cleanly, and resuming that checkpoint — again distributed — must
// produce JSON byte-identical to the never-interrupted sequential run.
func TestDistCoordinatorSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	graph := writeDistMesh(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "drain.ckpt")
	common := []string{"-graph", graph, "-method", "os",
		"-trials", strconv.Itoa(distTrials), "-seed", "7"}

	refJSON := filepath.Join(dir, "ref.json")
	var sb strings.Builder
	if err := run(append(common, "-json", refJSON), &sb); err != nil {
		t.Fatal(err)
	}

	coord, coordOut := startDistHelper(t, append(common,
		"-dist-listen", "127.0.0.1:0", "-checkpoint", ckpt)...)
	defer coord.Process.Kill()
	base := "http://" + awaitOutput(t, coord, coordOut, coordAddrRE, "coordinator address")

	// Two in-process workers drive the run while it lasts.
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	for i := 0; i < 2; i++ {
		go (&dist.Worker{Base: base, Name: fmt.Sprintf("w%d", i), Pool: 1}).Run(wctx)
	}

	// Give the fleet time to merge a real prefix, then drain.
	time.Sleep(400 * time.Millisecond)
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator did not drain cleanly: %v\n%s", err, coordOut.String())
	}
	out := coordOut.String()
	m := stoppedRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("drained coordinator reported no partial prefix:\n%s", out)
	}
	done, _ := strconv.Atoi(m[1])
	if done <= 0 || done >= distTrials {
		t.Fatalf("drained after %d trials, want a strict non-empty prefix of %d (retune timing)", done, distTrials)
	}
	if !strings.Contains(out, "checkpoint saved to "+ckpt) {
		t.Fatalf("no checkpoint saved on drain:\n%s", out)
	}
	stopWorkers()

	// Resume the checkpoint through a fresh distributed run: in-process
	// coordinator, new worker pair joining once its address is printed.
	gotJSON := filepath.Join(dir, "resumed.json")
	var resumeOut syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(append(common, "-resume", ckpt,
			"-dist-listen", "127.0.0.1:0", "-json", gotJSON), &resumeOut)
	}()
	deadline := time.Now().Add(20 * time.Second)
	var rbase string
	for {
		if m := coordAddrRE.FindStringSubmatch(resumeOut.String()); m != nil {
			rbase = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed coordinator never bound:\n%s", resumeOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	rctx, stopResumeWorkers := context.WithCancel(context.Background())
	defer stopResumeWorkers()
	for i := 0; i < 2; i++ {
		go (&dist.Worker{Base: rbase, Name: fmt.Sprintf("r%d", i), Pool: 1}).Run(rctx)
	}
	if err := <-errc; err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, resumeOut.String())
	}
	if strings.Contains(resumeOut.String(), "stopped after") {
		t.Fatalf("resumed run still partial:\n%s", resumeOut.String())
	}

	ref, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotJSON)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(got) {
		t.Fatalf("drain+resume JSON differs from uninterrupted run:\nref:     %s\nresumed: %s", ref, got)
	}
}
