package main

import (
	"fmt"
	"io"
	"os"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/cliflags"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// progressEvery is the cadence of the live -progress line.
const progressEvery = 500 * time.Millisecond

// telemetryStatusW receives the telemetry status output (the progress
// line, the metrics address, the final summary). Stderr so stdout stays
// machine-readable; tests redirect it.
var telemetryStatusW io.Writer = os.Stderr

// telemetryRun owns the Observer and the outputs the telemetry flags
// asked for: the live progress line, the metrics HTTP server, and the
// JSONL event journal.
type telemetryRun struct {
	obs  *mpmb.Observer
	errw io.Writer

	journal  *os.File
	journalW *telemetry.JournalWriter

	srv  *telemetry.HTTPServer
	hold time.Duration

	progressQuit chan struct{}
	progressDone chan struct{}
	start        time.Time
}

// startTelemetry builds an Observer per the flags, or returns nil when
// no telemetry flag is set (the search then runs uninstrumented).
// Status lines (progress, the metrics address) go to errw so stdout
// stays machine-readable.
func startTelemetry(t *cliflags.Telemetry, errw io.Writer) (*telemetryRun, error) {
	if !t.Enabled() {
		return nil, nil
	}
	tr := &telemetryRun{errw: errw, hold: *t.MetricsHold, start: time.Now()}

	var onEvent func(mpmb.Event)
	if *t.Journal != "" {
		f, err := os.Create(*t.Journal)
		if err != nil {
			return nil, fmt.Errorf("opening journal: %w", err)
		}
		tr.journal = f
		// The hardened writer drops-and-counts on write failure (disk
		// full, closed file) instead of panicking or tearing records;
		// finish() reports the damage as a terminal error note.
		tr.journalW = telemetry.NewJournalWriter(f)
		onEvent = func(e mpmb.Event) { tr.journalW.Write(e) }
	}
	tr.obs = mpmb.NewObserver(mpmb.ObserverConfig{OnEvent: onEvent})

	if *t.MetricsAddr != "" {
		// Bind synchronously so a bad -metrics-addr fails the run up
		// front with the address in the message, rather than a background
		// goroutine losing the error. mpmb-serve fronts its listener the
		// same way.
		srv, err := telemetry.ListenAndServe(*t.MetricsAddr, tr.obs.HTTPHandler())
		if err != nil {
			tr.closeJournal()
			return nil, fmt.Errorf("metrics server: %w", err)
		}
		tr.srv = srv
		fmt.Fprintf(errw, "metrics: http://%s/metrics\n", srv.Addr())
	}

	if *t.Progress {
		tr.progressQuit = make(chan struct{})
		tr.progressDone = make(chan struct{})
		go tr.progressLoop()
	}
	return tr, nil
}

// Observer returns the run's observer (nil-safe: a nil telemetryRun
// means telemetry is off and the nil Observer disables instrumentation).
func (tr *telemetryRun) Observer() *mpmb.Observer {
	if tr == nil {
		return nil
	}
	return tr.obs
}

// progressLoop repaints one stderr line with the live snapshot.
func (tr *telemetryRun) progressLoop() {
	defer close(tr.progressDone)
	tick := time.NewTicker(progressEvery)
	defer tick.Stop()
	for {
		select {
		case <-tr.progressQuit:
			return
		case <-tick.C:
			fmt.Fprintf(tr.errw, "\r%s", progressLine(tr.obs.Metrics(), time.Since(tr.start)))
		}
	}
}

// progressLine renders the live progress summary from a snapshot.
func progressLine(m mpmb.Metrics, elapsed time.Duration) string {
	sec := elapsed.Seconds()
	rate := 0.0
	if sec > 0 {
		rate = float64(m.Trials+m.PrepTrials) / sec
	}
	s := fmt.Sprintf("trials=%d", m.Trials)
	if m.PrepTrials > 0 {
		s += fmt.Sprintf(" prep=%d", m.PrepTrials)
	}
	s += fmt.Sprintf(" (%.0f/s)", rate)
	if r := m.EdgePruneRate(); r > 0 {
		s += fmt.Sprintf(" edge-prune=%.0f%%", 100*r)
	}
	if r := m.CandPruneRate(); r > 0 {
		s += fmt.Sprintf(" cand-prune=%.0f%%", 100*r)
	}
	if m.LeaderP > 0 {
		s += fmt.Sprintf(" P̂=%.4f", m.LeaderP)
		if m.LeaderHalfWidth > 0 {
			s += fmt.Sprintf("±%.4f", m.LeaderHalfWidth)
		}
	}
	return s
}

func (tr *telemetryRun) closeJournal() {
	if tr.journal != nil {
		_ = tr.journal.Close()
		tr.journal = nil
	}
}

// finish tears the telemetry down in dependency order: stop the progress
// repaints, drain buffered events into the journal (Observer.Close),
// close the journal file, print the final summary, and keep the metrics
// server up for -metrics-hold before shutting it down.
func (tr *telemetryRun) finish() error {
	if tr == nil {
		return nil
	}
	if tr.progressQuit != nil {
		close(tr.progressQuit)
		<-tr.progressDone
		fmt.Fprintf(tr.errw, "\r%s\n", progressLine(tr.obs.Metrics(), time.Since(tr.start)))
	}
	tr.obs.Close()
	var err error
	if tr.journal != nil {
		err = tr.journal.Close()
		tr.journal = nil
		// The search itself succeeded; journal damage is reported as the
		// run's terminal note (and exit status) without re-running trials.
		if jerr := tr.journalW.Err(); jerr != nil && err == nil {
			err = jerr
		}
	}
	m := tr.obs.Metrics()
	fmt.Fprintf(tr.errw, "telemetry: trials=%d hits=%d prep=%d edge-prune=%.1f%% cand-prune=%.1f%% events-dropped=%d\n",
		m.Trials, m.TrialHits, m.PrepTrials, 100*m.EdgePruneRate(), 100*m.CandPruneRate(), m.EventsDropped)
	if tr.srv != nil {
		if tr.hold > 0 {
			time.Sleep(tr.hold)
		}
		if serr := tr.srv.Close(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
