package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// TestRunTelemetryJournalAndProgress runs an instrumented search and
// checks the three CLI surfaces: the stderr summary line, the JSONL
// journal (valid events whose trial batches sum to -trials), and the
// metrics block in the -json export.
func TestRunTelemetryJournalAndProgress(t *testing.T) {
	path := writeFigure1(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")
	jsonOut := filepath.Join(dir, "out.json")

	var errBuf bytes.Buffer
	old := telemetryStatusW
	telemetryStatusW = &errBuf
	defer func() { telemetryStatusW = old }()

	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "os", "-trials", "20000",
		"-progress", "-journal", journal, "-json", jsonOut}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#1  B(0,1|1,2)") {
		t.Fatalf("wrong MPMB:\n%s", sb.String())
	}

	stderr := errBuf.String()
	if !strings.Contains(stderr, "telemetry: trials=20000") {
		t.Errorf("stderr missing the telemetry summary:\n%s", stderr)
	}
	if !strings.Contains(stderr, "events-dropped=") {
		t.Errorf("stderr missing the drop counter:\n%s", stderr)
	}

	// Every journal line is a well-formed event; trial batches add up.
	f, err := os.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var trialN int64
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var e mpmb.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("journal line %d: %v", lines, err)
		}
		if e.Kind == mpmb.EventTrialDone {
			trialN += e.N
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("journal is empty")
	}
	if trialN != 20000 {
		t.Errorf("journal trial_done batches sum to %d, want 20000", trialN)
	}

	// The JSON export carries the metrics snapshot.
	raw, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics *mpmb.Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metrics == nil {
		t.Fatal("JSON export has no metrics block despite telemetry being on")
	}
	if doc.Metrics.Trials != 20000 {
		t.Errorf("exported metrics trials = %d, want 20000", doc.Metrics.Trials)
	}
}

// TestRunWithoutTelemetryOmitsMetrics: no telemetry flags, no metrics in
// the JSON export and nothing on the status writer.
func TestRunWithoutTelemetryOmitsMetrics(t *testing.T) {
	path := writeFigure1(t)
	jsonOut := filepath.Join(t.TempDir(), "out.json")

	var errBuf bytes.Buffer
	old := telemetryStatusW
	telemetryStatusW = &errBuf
	defer func() { telemetryStatusW = old }()

	var sb strings.Builder
	if err := run([]string{"-graph", path, "-method", "os", "-trials", "2000", "-json", jsonOut}, &sb); err != nil {
		t.Fatal(err)
	}
	if errBuf.Len() != 0 {
		t.Errorf("status writer got output without telemetry flags:\n%s", errBuf.String())
	}
	raw, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"metrics"`) {
		t.Error("JSON export contains a metrics block without an observer")
	}
}

// TestRunMetricsAddrBindFailure: a -metrics-addr that cannot bind fails
// the run up front with the offending address in the message, instead of
// a background goroutine losing the error after the search started.
func TestRunMetricsAddrBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	taken := ln.Addr().String()

	path := writeFigure1(t)
	var errBuf bytes.Buffer
	old := telemetryStatusW
	telemetryStatusW = &errBuf
	defer func() { telemetryStatusW = old }()

	var sb strings.Builder
	err = run([]string{"-graph", path, "-method", "os", "-trials", "1000",
		"-metrics-addr", taken}, &sb)
	if err == nil {
		t.Fatalf("bind failure on %s not surfaced", taken)
	}
	if !strings.Contains(err.Error(), taken) {
		t.Fatalf("error %q does not name the address %s", err, taken)
	}
	// Fail-fast means the search never ran.
	if strings.Contains(sb.String(), "method=") {
		t.Fatalf("search ran despite the bind failure:\n%s", sb.String())
	}
}

// TestRunJournalWriteFailure: a journal destination that rejects writes
// (here /dev/full's ENOSPC) must not panic or fail the search mid-run;
// the run completes, the results print, and the damage surfaces as a
// terminal error note.
func TestRunJournalWriteFailure(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("needs /dev/full")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("no /dev/full on this system")
	}
	path := writeFigure1(t)
	var errBuf bytes.Buffer
	old := telemetryStatusW
	telemetryStatusW = &errBuf
	defer func() { telemetryStatusW = old }()

	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "os", "-trials", "20000",
		"-journal", "/dev/full"}, &sb)
	if err == nil {
		t.Fatal("journal write failures not reported as a terminal note")
	}
	if !strings.Contains(err.Error(), "journal dropped") {
		t.Fatalf("terminal note %q does not name the journal damage", err)
	}
	// The search itself still completed and reported its answer.
	if !strings.Contains(sb.String(), "#1  B(0,1|1,2)") {
		t.Fatalf("search result missing despite journal-only failure:\n%s", sb.String())
	}
}

// TestRunOptionErrorNamesFlag: validation failures surface the flag
// spelling, not just the Options field.
func TestRunOptionErrorNamesFlag(t *testing.T) {
	path := writeFigure1(t)
	var sb strings.Builder
	err := run([]string{"-graph", path, "-method", "os", "-trials", "-5"}, &sb)
	if err == nil {
		t.Fatal("negative -trials accepted")
	}
	if !strings.Contains(err.Error(), "flag -trials") {
		t.Errorf("error %q does not name the -trials flag", err)
	}
	if !strings.Contains(err.Error(), "Options.Trials") {
		t.Errorf("error %q lost the underlying OptionError", err)
	}
}
