package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/cliflags"
)

// runJournal executes the `journal` subcommand: replay a JSONL run log
// written by `mpmb-search -journal` and print a run summary — event
// totals per kind, trial throughput over the journal's time span, the
// estimate trajectory, and any supervisor transitions.
func runJournal(args []string, out io.Writer) error {
	fs := cliflags.New("mpmb-bench journal")
	var (
		in     = fs.String("in", "", "JSONL journal file written by mpmb-search -journal (required; also accepted as a positional argument)")
		events = fs.Bool("events", false, "also re-print every event one per line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" && fs.NArg() > 0 {
		*in = fs.Arg(0)
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("journal: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	return replayJournal(f, out, *events)
}

// journalStats accumulates the replay aggregates.
type journalStats struct {
	kinds        map[string]int64
	total        int64
	trials       int64 // sum of trial_done batch sizes
	first, last  time.Time
	lastEstimate *mpmb.Event
	transitions  []mpmb.Event
	methods      map[string]bool
}

func replayJournal(r io.Reader, out io.Writer, echo bool) error {
	st := journalStats{kinds: make(map[string]int64), methods: make(map[string]bool)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e mpmb.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("journal line %d: %w", line, err)
		}
		if echo {
			fmt.Fprintf(out, "%s %-20s method=%s phase=%s worker=%d trial=%d n=%d\n",
				e.Time.Format(time.RFC3339Nano), e.Kind, e.Method, e.Phase, e.Worker, e.Trial, e.N)
		}
		st.observe(e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if st.total == 0 {
		return fmt.Errorf("journal: no events found")
	}
	st.print(out)
	return nil
}

func (st *journalStats) observe(e mpmb.Event) {
	st.total++
	st.kinds[e.Kind.String()]++
	if e.Method != "" {
		st.methods[e.Method] = true
	}
	if st.first.IsZero() || e.Time.Before(st.first) {
		st.first = e.Time
	}
	if e.Time.After(st.last) {
		st.last = e.Time
	}
	switch e.Kind {
	case mpmb.EventTrialDone:
		st.trials += e.N
	case mpmb.EventEstimateUpdated:
		c := e
		st.lastEstimate = &c
	case mpmb.EventEscalation:
		st.transitions = append(st.transitions, e)
	}
}

func (st *journalStats) print(out io.Writer) {
	span := st.last.Sub(st.first)
	fmt.Fprintf(out, "journal: %d events over %v\n", st.total, span.Round(time.Millisecond))
	for _, k := range []string{"trial_done", "candidate_promoted", "audit_miss", "escalation", "checkpoint_saved", "checkpoint_retried", "estimate_updated"} {
		if n := st.kinds[k]; n > 0 {
			fmt.Fprintf(out, "  %-20s %d\n", k, n)
		}
	}
	if st.trials > 0 {
		rate := ""
		if sec := span.Seconds(); sec > 0 {
			rate = fmt.Sprintf(" (%.0f/s over the journal span)", float64(st.trials)/sec)
		}
		fmt.Fprintf(out, "trials replayed: %d%s\n", st.trials, rate)
	}
	if st.lastEstimate != nil {
		e := st.lastEstimate
		fmt.Fprintf(out, "final estimate: B(%d,%d|%d,%d) P̂=%.4f", e.B[0], e.B[1], e.B[2], e.B[3], e.P)
		if e.HalfWidth > 0 {
			fmt.Fprintf(out, " ±%.4f", e.HalfWidth)
		}
		fmt.Fprintf(out, " after %d trials\n", e.Trial)
	}
	for _, tr := range st.transitions {
		fmt.Fprintf(out, "transition: %s -> %s (%s, at trial %d)\n", tr.From, tr.To, tr.Detail, tr.Trial)
	}
}
