package main

import (
	"strings"
	"testing"
)

// A handwritten three-event journal: prep promotion, a trial batch, and
// a final estimate. Timestamps are 2s apart so the throughput line has
// a deterministic denominator.
const sampleJournal = `{"kind":"candidate_promoted","time":"2026-08-06T10:00:00Z","method":"ols","phase":"prep","worker":0,"trial":3,"n":0,"b":[0,1,1,2],"weight":8}
{"kind":"trial_done","time":"2026-08-06T10:00:01Z","method":"ols","phase":"sampling","worker":0,"trial":1000,"n":1000}

{"kind":"trial_done","time":"2026-08-06T10:00:02Z","method":"ols","phase":"sampling","worker":0,"trial":2000,"n":1000}
{"kind":"estimate_updated","time":"2026-08-06T10:00:02Z","method":"ols","phase":"sampling","worker":0,"trial":2000,"n":0,"b":[0,1,1,2],"p":0.25,"half_width":0.01}
`

func TestJournalReplay(t *testing.T) {
	var sb strings.Builder
	if err := replayJournal(strings.NewReader(sampleJournal), &sb, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"journal: 4 events over 2s",
		"trial_done           2",
		"candidate_promoted   1",
		"trials replayed: 2000 (1000/s over the journal span)",
		"final estimate: B(0,1|1,2) P̂=0.2500 ±0.0100 after 2000 trials",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
}

func TestJournalReplayEcho(t *testing.T) {
	var sb strings.Builder
	if err := replayJournal(strings.NewReader(sampleJournal), &sb, true); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "trial_done"); got < 3 {
		// 2 echoed lines + 1 summary row.
		t.Errorf("echo mode printed %d trial_done lines, want at least 3:\n%s", got, sb.String())
	}
}

func TestJournalReplayErrors(t *testing.T) {
	var sb strings.Builder
	err := replayJournal(strings.NewReader("{not json}\n"), &sb, false)
	if err == nil || !strings.Contains(err.Error(), "journal line 1") {
		t.Errorf("malformed line error = %v, want a line-numbered error", err)
	}
	err = replayJournal(strings.NewReader("\n\n"), &sb, false)
	if err == nil || !strings.Contains(err.Error(), "no events") {
		t.Errorf("empty journal error = %v, want a no-events error", err)
	}
	err = replayJournal(strings.NewReader(`{"kind":"warp_drive_engaged","time":"2026-08-06T10:00:00Z"}`+"\n"), &sb, false)
	if err == nil || !strings.Contains(err.Error(), "unknown event kind") {
		t.Errorf("unknown kind error = %v, want the telemetry unmarshal error", err)
	}
}

func TestJournalSubcommandRequiresInput(t *testing.T) {
	var sb strings.Builder
	if err := runJournal(nil, &sb); err == nil {
		t.Error("journal with no input did not error")
	}
}
