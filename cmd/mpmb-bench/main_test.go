package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// tinyArgs keeps the CLI experiments fast in tests.
var tinyArgs = []string{"-scale", "0.05", "-trials", "40", "-prep", "10", "-datasets", "abide", "-budget", "5s"}

func TestRunSingleExperiments(t *testing.T) {
	cases := map[string]string{
		"table3":   "Table III",
		"table4":   "Table IV",
		"fig6":     "Figure 6",
		"fig10":    "Figure 10",
		"ablation": "Ablations",
	}
	for exp, marker := range cases {
		var sb strings.Builder
		if err := run(append([]string{"-exp", exp}, tinyArgs...), &sb); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		out := sb.String()
		if !strings.Contains(out, marker) {
			t.Fatalf("%s: missing %q:\n%s", exp, marker, out)
		}
		if !strings.Contains(out, "["+exp+" completed") {
			t.Fatalf("%s: missing completion line:\n%s", exp, out)
		}
	}
}

func TestRunSummaryAliasesFig7(t *testing.T) {
	var sb strings.Builder
	if err := run(append([]string{"-exp", "summary"}, tinyArgs...), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedups") {
		t.Fatalf("summary output missing speedups:\n%s", sb.String())
	}
}

// TestRunConformanceSubcommand: `mpmb-bench conformance` emits the JSON
// conformance report (per-method error, coverage, trials-to-tolerance)
// and a PASS verdict line. PrepTrials stays at the paper's 100 — the
// candidate-coverage gate is calibrated for it — while a reduced trial
// count keeps the test quick (the acceptance intervals widen to match).
func TestRunConformanceSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"conformance", "-trials", "1000", "-prep", "100", "-seed", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var rep struct {
		Pass    bool `json:"pass"`
		Methods []struct {
			Method            string  `json:"method"`
			MaxAbsErr         float64 `json:"max_abs_err"`
			Coverage          float64 `json:"coverage"`
			TrialsToTolerance int     `json:"trials_to_tolerance"`
		} `json:"methods"`
	}
	dec := json.NewDecoder(strings.NewReader(out))
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("conformance output is not a JSON report: %v\n%s", err, out)
	}
	if !rep.Pass {
		t.Fatalf("conformance reported failure:\n%s", out)
	}
	if len(rep.Methods) != 7 {
		t.Fatalf("expected 7 method summaries (4 estimators + 3 query variants), got %d", len(rep.Methods))
	}
	for _, m := range rep.Methods {
		if m.TrialsToTolerance <= 0 {
			t.Errorf("%s: missing trials_to_tolerance", m.Method)
		}
	}
	if !strings.Contains(out, "conformance: PASS") {
		t.Fatalf("missing verdict line:\n%s", out)
	}
	if !strings.Contains(out, "[conformance completed") {
		t.Fatalf("missing completion line:\n%s", out)
	}
}

// TestRunConformanceSelfHealing drives the self-healing demonstration
// through the CLI: unsupervised it fails by design; with -audit-every the
// supervised run heals and conformance passes.
func TestRunConformanceSelfHealing(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"conformance", "-trials", "4000", "-seed", "1", "-self-healing"}, &sb)
	if err == nil {
		t.Fatalf("unsupervised self-healing demonstration passed — it must fail by design:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "self-healing: NOT healed") {
		t.Fatalf("missing self-healing failure line:\n%s", sb.String())
	}

	sb.Reset()
	err = run([]string{"conformance", "-trials", "4000", "-seed", "1", "-audit-every", "100"}, &sb)
	if err != nil {
		t.Fatalf("supervised self-healing run failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "self-healing: healed") {
		t.Fatalf("missing healed line:\n%s", out)
	}
	if !strings.Contains(out, "conformance: PASS") {
		t.Fatalf("healed run did not pass conformance:\n%s", out)
	}
}

func TestRunBenchErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "fig99"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(append([]string{"-exp", "fig7", "-datasets", "bogus"}, tinyArgs[:4]...), &sb); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunJSONExport(t *testing.T) {
	path := t.TempDir() + "/report.json"
	var sb strings.Builder
	if err := run(append([]string{"-exp", "table3", "-json", path}, tinyArgs...), &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	results, ok := report["results"].(map[string]any)
	if !ok || results["table3"] == nil {
		t.Fatalf("missing table3 in JSON: %v", report)
	}
	if err := run([]string{"-exp", "fig99", "-json", path}, &sb); err == nil {
		t.Fatal("unknown experiment accepted for JSON export")
	}
}

// TestRunPerfSubcommand: `mpmb-bench perf` on a tiny corpus must print
// the kernel table and write a parseable BENCH_core.json with both OS
// rows and a positive speedup. One round keeps the test to a few seconds
// of benchmark wall clock.
func TestRunPerfSubcommand(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/bench.json"
	cpu, mem := dir+"/cpu.out", dir+"/mem.out"
	var sb strings.Builder
	err := run([]string{"perf",
		"-bench-out", jsonPath, "-rounds", "1",
		"-corpus-l", "60", "-corpus-r", "12", "-corpus-edges", "300",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{"os_kernel", "os_seed_baseline", "speedup vs seed baseline", "wrote " + jsonPath} {
		if !strings.Contains(out, marker) {
			t.Fatalf("perf output missing %q:\n%s", marker, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Corpus struct {
			NumL     int `json:"num_l"`
			NumEdges int `json:"num_edges"`
		} `json:"corpus"`
		Entries []struct {
			Name       string  `json:"name"`
			NsPerTrial float64 `json:"ns_per_trial"`
		} `json:"entries"`
		Speedup float64 `json:"speedup_os_kernel_vs_seed"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid BENCH json: %v", err)
	}
	if rep.Corpus.NumL != 60 || rep.Corpus.NumEdges != 300 {
		t.Fatalf("corpus flags not honored: %+v", rep.Corpus)
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup %v, want > 0", rep.Speedup)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}

	// Flag errors must surface, not crash.
	if err := run([]string{"perf", "-badflag"}, &sb); err == nil {
		t.Fatal("bad perf flag accepted")
	}
	if err := run([]string{"perf", "-bench-out", dir + "/no/such/dir/b.json", "-rounds", "1",
		"-corpus-l", "6", "-corpus-r", "3", "-corpus-edges", "9"}, &sb); err == nil {
		t.Fatal("unwritable -bench-out accepted")
	}
}
