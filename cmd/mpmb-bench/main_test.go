package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// tinyArgs keeps the CLI experiments fast in tests.
var tinyArgs = []string{"-scale", "0.05", "-trials", "40", "-prep", "10", "-datasets", "abide", "-budget", "5s"}

func TestRunSingleExperiments(t *testing.T) {
	cases := map[string]string{
		"table3":   "Table III",
		"table4":   "Table IV",
		"fig6":     "Figure 6",
		"fig10":    "Figure 10",
		"ablation": "Ablations",
	}
	for exp, marker := range cases {
		var sb strings.Builder
		if err := run(append([]string{"-exp", exp}, tinyArgs...), &sb); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		out := sb.String()
		if !strings.Contains(out, marker) {
			t.Fatalf("%s: missing %q:\n%s", exp, marker, out)
		}
		if !strings.Contains(out, "["+exp+" completed") {
			t.Fatalf("%s: missing completion line:\n%s", exp, out)
		}
	}
}

func TestRunSummaryAliasesFig7(t *testing.T) {
	var sb strings.Builder
	if err := run(append([]string{"-exp", "summary"}, tinyArgs...), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedups") {
		t.Fatalf("summary output missing speedups:\n%s", sb.String())
	}
}

func TestRunBenchErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "fig99"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(append([]string{"-exp", "fig7", "-datasets", "bogus"}, tinyArgs[:4]...), &sb); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunJSONExport(t *testing.T) {
	path := t.TempDir() + "/report.json"
	var sb strings.Builder
	if err := run(append([]string{"-exp", "table3", "-json", path}, tinyArgs...), &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	results, ok := report["results"].(map[string]any)
	if !ok || results["table3"] == nil {
		t.Fatalf("missing table3 in JSON: %v", report)
	}
	if err := run([]string{"-exp", "fig99", "-json", path}, &sb); err == nil {
		t.Fatal("unknown experiment accepted for JSON export")
	}
}
