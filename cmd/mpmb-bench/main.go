// Command mpmb-bench regenerates the tables and figures of the paper's
// evaluation section (Section VIII) on the synthetic dataset analogues.
//
// Usage:
//
//	mpmb-bench [flags] -exp <experiment>
//
// Experiments: table3, table4, fig6, fig7, fig8, fig9, fig10, fig11,
// fig12, fig13, ablation (DESIGN.md §6 design-choice costs), summary
// (= fig7's speedup table), conformance (the internal/statcheck
// estimator-vs-exact-oracle gate, also spellable as the subcommand
// `mpmb-bench conformance`), or all.
//
// Examples:
//
//	mpmb-bench -exp all                      # full sweep, laptop defaults
//	mpmb-bench -exp fig7 -trials 20000       # the paper's trial count
//	mpmb-bench -exp fig9 -datasets abide     # one dataset only
//
// The `perf` subcommand runs the kernel benchmark trajectory instead of
// the figures: it times the flat-memory OS trial kernel against the
// frozen seed baseline on a pinned corpus and writes BENCH_core.json
// (see `make bench`):
//
//	mpmb-bench perf                          # table + BENCH_core.json
//	mpmb-bench perf -bench-out /tmp/b.json   # choose the output path
//
// The `journal` subcommand replays a JSONL run log written by
// `mpmb-search -journal` and summarizes it (event totals, trial
// throughput, the estimate trajectory, supervisor transitions):
//
//	mpmb-bench journal run.jsonl
//	mpmb-bench journal -events -in run.jsonl # re-print every event
//
// Both the figures and perf accept -cpuprofile / -memprofile to capture
// pprof profiles of the run.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bench"
	"github.com/uncertain-graphs/mpmb/internal/cliflags"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/profiling"
)

// runPerf executes the `perf` subcommand: time the trial kernels on the
// pinned corpus, print the table, and write the BENCH_core.json report.
func runPerf(args []string, out io.Writer) (retErr error) {
	fs := cliflags.New("mpmb-bench perf")
	def := bench.DefaultPerfCorpus
	var (
		benchOut   = fs.String("bench-out", "BENCH_core.json", "write the JSON report here (empty = stdout table only)")
		rounds     = fs.Int("rounds", bench.DefaultPerfRounds, "interleaved kernel/seed measurement rounds (min is kept)")
		secondary  = fs.Bool("secondary", false, "also measure the pinned secondary corpus (denser, uniform weights)")
		numL       = fs.Int("corpus-l", def.NumL, "corpus left vertices")
		numR       = fs.Int("corpus-r", def.NumR, "corpus right vertices")
		numEdges   = fs.Int("corpus-edges", def.NumEdges, "corpus edges")
		pLo        = fs.Float64("corpus-plo", def.PLo, "corpus minimum edge probability")
		pHi        = fs.Float64("corpus-phi", def.PHi, "corpus maximum edge probability")
		corpusSeed = fs.Uint64("corpus-seed", def.Seed, "corpus generation seed")
		query      = fs.QueryFlags()
	)
	cpuProfile, memProfile := fs.Profiling()
	if err := fs.Parse(args); err != nil {
		return err
	}
	anchor, err := perfAnchor(query)
	if err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	// Create the report file before spending minutes measuring, so an
	// unwritable path fails immediately.
	var f *os.File
	if *benchOut != "" {
		var err error
		if f, err = os.Create(*benchOut); err != nil {
			return err
		}
		defer f.Close()
	}

	corpus := bench.PerfCorpus{
		NumL: *numL, NumR: *numR, NumEdges: *numEdges,
		PLo: *pLo, PHi: *pHi, Seed: *corpusSeed,
	}
	rep, err := bench.RunPerfCorpusAnchor(corpus, *rounds, anchor)
	if err != nil {
		return err
	}
	if *secondary {
		if err := bench.AttachSecondary(rep, *rounds); err != nil {
			return err
		}
	}
	bench.PrintPerf(out, rep)
	if f != nil {
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *benchOut)
	}
	return nil
}

// perfAnchor converts the shared anchor flags into the anchored_os
// row's anchor; nil keeps the default heaviest-edge anchor. The
// community and adaptive-prep variants have no benchmark row, so perf
// rejects their flags rather than silently ignoring them.
func perfAnchor(query *cliflags.QueryValues) (*core.Anchor, error) {
	q, err := query.Build()
	if err != nil {
		return nil, err
	}
	if q == nil {
		return nil, nil
	}
	if q.Community != nil || q.AdaptivePrep {
		return nil, fmt.Errorf("perf supports only the anchor flags (-anchor-l, -anchor-r, -anchor-edge)")
	}
	set := 0
	for _, on := range []bool{q.AnchorL != nil, q.AnchorR != nil, q.AnchorEdge != nil} {
		if on {
			set++
		}
	}
	if set > 1 {
		return nil, fmt.Errorf("at most one of -anchor-l, -anchor-r and -anchor-edge may be set")
	}
	switch {
	case q.AnchorL != nil:
		return &core.Anchor{Kind: core.AnchorLeft, U: *q.AnchorL}, nil
	case q.AnchorR != nil:
		return &core.Anchor{Kind: core.AnchorRight, V: *q.AnchorR}, nil
	default:
		return &core.Anchor{Kind: core.AnchorEdge, U: q.AnchorEdge.U, V: q.AnchorEdge.V}, nil
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpmb-bench:", err)
		os.Exit(1)
	}
}

// run parses args and executes the selected experiments, writing tables
// to out. Split from main for testability.
func run(args []string, out io.Writer) (retErr error) {
	// `mpmb-bench conformance` is sugar for `-exp conformance`: the
	// statistical conformance check is a gate, not a figure, so it gets a
	// subcommand spelling.
	if len(args) > 0 && args[0] == "conformance" {
		args = append([]string{"-exp", "conformance"}, args[1:]...)
	}
	// `mpmb-bench perf` is the kernel benchmark trajectory — a different
	// report shape from the figures, so it parses its own flags.
	if len(args) > 0 && args[0] == "perf" {
		return runPerf(args[1:], out)
	}
	// `mpmb-bench journal` replays a JSONL run log written by
	// `mpmb-search -journal`.
	if len(args) > 0 && args[0] == "journal" {
		return runJournal(args[1:], out)
	}
	fs := cliflags.New("mpmb-bench")
	var (
		exp      = fs.String("exp", "all", "experiment to run: table3,table4,fig6..fig13,ablation,topk,conformance,summary,all")
		trials   = fs.Int("trials", 2000, "sampling-phase trials N (paper: 20000)")
		prep     = fs.Int("prep-trials", 100, "OLS preparing-phase trials N_os")
		seed     = fs.Uint64("seed", 1, "random seed for datasets and samplers")
		scale    = fs.Float64("scale", 1, "dataset scale multiplier")
		budget   = fs.Duration("budget", 30*time.Second, "per-cell time budget before extrapolation")
		datasets = fs.String("datasets", "", "comma-separated dataset subset (default: all four)")
		mu       = fs.Float64("mu", 0.05, "target probability for trial-number arithmetic")
		jsonOut  = fs.String("json", "", "write structured JSON results to this file instead of text tables")

		auditEvery = fs.Int("audit-every", 0, "conformance: audit cadence of the supervised self-healing demonstration (0 = off)")
		selfHeal   = fs.Bool("self-healing", false, "conformance: run the self-healing demonstration unsupervised (fails by design)")
		epsilon    = fs.Float64("epsilon", 0, "conformance: accuracy-aware stop for the supervised run (0 = off)")
		deadline   = fs.Duration("deadline", 0, "conformance: wall-clock bound for the supervised run (0 = off)")
	)
	cpuProfile, memProfile := fs.Profiling()
	fs.Alias("prep", "prep-trials")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	opt := bench.DefaultOptions()
	opt.SampleTrials = *trials
	opt.PrepTrials = *prep
	opt.Seed = *seed
	opt.Scale = *scale
	opt.TimeBudget = *budget
	opt.Mu = *mu
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}
	opt.AuditEvery = *auditEvery
	opt.SelfHealing = *selfHeal
	opt.Epsilon = *epsilon
	if *deadline > 0 {
		opt.Deadline = time.Now().Add(*deadline)
	}

	if *jsonOut != "" {
		var selected []string
		if e := strings.ToLower(*exp); e != "all" {
			if e == "summary" {
				e = "fig7"
			}
			selected = []string{e}
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := bench.ExportJSON(f, opt, selected); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonOut)
		return nil
	}

	experiments := []struct {
		name string
		fn   func() error
	}{
		{"table3", func() error { return bench.PrintTable3(out, opt) }},
		{"table4", func() error { return bench.PrintTable4(out, opt) }},
		{"fig6", func() error { bench.PrintRatioMatrix(out); return nil }},
		{"fig7", func() error { return bench.PrintOverall(out, opt) }},
		{"fig8", func() error { return bench.PrintPhaseSweep(out, opt) }},
		{"fig9", func() error { return bench.PrintScalability(out, opt) }},
		{"fig10", func() error { return bench.PrintTrialRatios(out, opt) }},
		{"fig11", func() error { return bench.PrintSamplingConvergence(out, opt) }},
		{"fig12", func() error { return bench.PrintPreparingTrend(out, opt) }},
		{"fig13", func() error { return bench.PrintMemory(out, opt) }},
		{"ablation", func() error { return bench.PrintAblations(out, opt) }},
		{"topk", func() error { return bench.PrintTopKAgreement(out, opt) }},
		{"conformance", func() error { return bench.PrintConformance(out, opt) }},
	}

	want := strings.ToLower(*exp)
	if want == "summary" {
		want = "fig7" // the speedup summary is printed with fig7
	}
	ran := false
	for _, e := range experiments {
		if want == "all" || want == e.name {
			t0 := time.Now()
			if err := e.fn(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Fprintf(out, "[%s completed in %v]\n\n", e.name, time.Since(t0).Round(time.Millisecond))
			ran = true
		}
	}
	if !ran {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
