// Command mpmb-gen generates the synthetic uncertain bipartite datasets
// (the Table III analogues) and writes them in the library's text or
// binary interchange format, ready for mpmb-search.
//
// Usage:
//
//	mpmb-gen -dataset movielens -out movielens.graph
//	mpmb-gen -dataset protein -scale 0.1 -seed 7 -format binary -out protein.bgraph
//	mpmb-gen -list
package main

import (
	"fmt"
	"io"
	"os"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/cliflags"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpmb-gen:", err)
		os.Exit(1)
	}
}

// run parses args and generates the requested dataset, writing progress
// to out. Split from main for testability.
func run(args []string, out io.Writer) error {
	fs := cliflags.New("mpmb-gen")
	var (
		name   = fs.String("dataset", "", "dataset to generate: abide, movielens, jester, protein, synthetic")
		outArg = fs.String("out", "", "output file (default: <dataset>.graph)")
		seed   = fs.Uint64("seed", 1, "random seed")
		scale  = fs.Float64("scale", 1, "size multiplier (named datasets)")
		format = fs.String("format", "text", "output format: text or binary")
		list   = fs.Bool("list", false, "list available datasets and exit")

		// synthetic-only knobs
		numL  = fs.Int("num-l", 100, "synthetic: |L|")
		numR  = fs.Int("num-r", 100, "synthetic: |R|")
		edges = fs.Int("num-edges", 1000, "synthetic: edge count")
		skew  = fs.Float64("skew", 0, "synthetic: Zipf degree-skew exponent (0 = uniform)")
		wdist = fs.String("wdist", "uniform", "synthetic: weight distribution (uniform, halfstep, normal)")
		pdist = fs.String("pdist", "uniform", "synthetic: probability distribution (uniform, normal, fixed)")
		pmean = fs.Float64("pmean", 0.5, "synthetic: probability mean (normal/fixed)")
	)
	// Old spellings keep parsing, hidden from -help.
	fs.Alias("numl", "num-l")
	fs.Alias("numr", "num-r")
	fs.Alias("edges", "num-edges")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range mpmb.DatasetNames {
			d, err := mpmb.GenerateDataset(n, mpmb.DatasetConfig{Seed: 1, Scale: 0.02})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-10s %s\n", n, d.Substitutes)
		}
		return nil
	}
	if *name == "" {
		fs.Usage()
		return fmt.Errorf("-dataset is required (or -list)")
	}
	var d *mpmb.Dataset
	var err error
	if *name == "synthetic" {
		d, err = mpmb.GenerateSynthetic(mpmb.SyntheticConfig{
			Seed: *seed, NumL: *numL, NumR: *numR, NumEdges: *edges,
			DegreeSkew: *skew,
			Weights:    mpmb.WeightDistName(*wdist),
			Probs:      mpmb.ProbDistName(*pdist),
			ProbMean:   *pmean,
		})
	} else {
		d, err = mpmb.GenerateDataset(*name, mpmb.DatasetConfig{Seed: *seed, Scale: *scale})
	}
	if err != nil {
		return err
	}
	path := *outArg
	if path == "" {
		path = *name + ".graph"
	}
	switch *format {
	case "text":
		err = mpmb.SaveGraph(path, d.G)
	case "binary":
		err = mpmb.SaveGraphBinary(path, d.G)
	default:
		return fmt.Errorf("unknown format %q (want text or binary)", *format)
	}
	if err != nil {
		return err
	}
	st := d.G.ComputeStats()
	fmt.Fprintf(out, "wrote %s: |L|=%d |R|=%d |E|=%d\n", path, st.NumL, st.NumR, st.NumEdges)
	fmt.Fprintf(out, "  weight   [%.3g, %.3g] (%s)\n", st.MinWeight, st.MaxWeight, d.WeightDesc)
	fmt.Fprintf(out, "  prob     [%.3g, %.3g] mean %.3g (%s)\n", st.MinProb, st.MaxProb, st.MeanProb, d.ProbDesc)
	fmt.Fprintf(out, "  expected edges per world: %.1f\n", st.ExpectedEdges)
	return nil
}
