package main

import (
	"path/filepath"
	"strings"
	"testing"

	mpmb "github.com/uncertain-graphs/mpmb"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"abide", "movielens", "jester", "protein"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunGeneratesBothFormats(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"text", "binary"} {
		path := filepath.Join(dir, "abide-"+format+".graph")
		var sb strings.Builder
		err := run([]string{"-dataset", "abide", "-scale", "0.05", "-format", format, "-out", path}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(sb.String(), "wrote "+path) {
			t.Fatalf("%s: missing confirmation:\n%s", format, sb.String())
		}
		g, err := mpmb.LoadGraph(path)
		if err != nil {
			t.Fatalf("%s: reload: %v", format, err)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph written", format)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("missing -dataset accepted")
	}
	if err := run([]string{"-dataset", "bogus"}, &sb); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-dataset", "abide", "-scale", "0.05", "-format", "xml"}, &sb); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-nosuchflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
	bad := filepath.Join(t.TempDir(), "no", "dir", "x.graph")
	if err := run([]string{"-dataset", "abide", "-scale", "0.05", "-out", bad}, &sb); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestRunSynthetic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "syn.graph")
	var sb strings.Builder
	err := run([]string{"-dataset", "synthetic", "-numl", "30", "-numr", "40",
		"-edges", "200", "-skew", "0.9", "-wdist", "halfstep", "-pdist", "normal",
		"-out", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mpmb.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumL() != 30 || g.NumR() != 40 || g.NumEdges() != 200 {
		t.Fatalf("synthetic graph is %dx%d/%d", g.NumL(), g.NumR(), g.NumEdges())
	}
	var sb2 strings.Builder
	if err := run([]string{"-dataset", "synthetic", "-wdist", "pareto", "-out", path}, &sb2); err == nil {
		t.Fatal("unknown weight distribution accepted")
	}
}
