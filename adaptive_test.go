package mpmb

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdaptiveSearchAuditsCleanRun(t *testing.T) {
	g := figure1(t)
	opt := DefaultOptions()
	opt.Trials = 4000
	opt.AuditEvery = 500
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil {
		t.Fatal("adaptive run returned no AdaptiveReport")
	}
	if res.Adaptive.StopReason != StopCompleted {
		t.Errorf("stop reason %q, want %q", res.Adaptive.StopReason, StopCompleted)
	}
	if res.Adaptive.Audits == 0 {
		t.Error("no audits ran despite AuditEvery")
	}
	// A well-prepared run on figure1 never escalates, so estimates match
	// the plain search bit for bit.
	plain := opt
	plain.AuditEvery = 0
	want, err := Search(g, plain)
	if err != nil {
		t.Fatal(err)
	}
	if want.Adaptive != nil {
		t.Error("plain search carries an AdaptiveReport")
	}
	if len(res.Estimates) != len(want.Estimates) {
		t.Fatalf("estimate counts differ: %d vs %d", len(res.Estimates), len(want.Estimates))
	}
	for i := range res.Estimates {
		if res.Estimates[i] != want.Estimates[i] {
			t.Errorf("estimate %d differs: %+v vs %+v", i, res.Estimates[i], want.Estimates[i])
		}
	}
}

func TestAdaptiveSearchEpsilonStopsEarly(t *testing.T) {
	g := figure1(t)
	opt := Options{Method: MethodOS, Trials: 500000, Seed: 7, Epsilon: 0.05}
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil || res.Adaptive.StopReason != StopEpsilon {
		t.Fatalf("expected an epsilon stop, got %+v", res.Adaptive)
	}
	if !res.Partial || res.TrialsDone >= opt.Trials {
		t.Errorf("epsilon stop should cut the budget: Partial=%v TrialsDone=%d", res.Partial, res.TrialsDone)
	}
	if hw := res.Adaptive.HalfWidth; hw <= 0 || hw > opt.Epsilon {
		t.Errorf("achieved half-width %v outside (0, %v]", hw, opt.Epsilon)
	}
}

func TestAdaptiveSearchDeadline(t *testing.T) {
	g := figure1(t)
	opt := Options{Method: MethodOS, Trials: 1 << 30, Seed: 7, Deadline: time.Now().Add(50 * time.Millisecond)}
	start := time.Now()
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline run overshot wildly: %v", elapsed)
	}
	if res.Adaptive == nil || res.Adaptive.StopReason != StopDeadline {
		t.Fatalf("expected a deadline stop, got %+v", res.Adaptive)
	}
	if !res.Partial {
		t.Error("deadline stop should be partial")
	}
}

func TestAdaptiveSearchContextCancel(t *testing.T) {
	g := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Method: MethodOS, Trials: 100000, Epsilon: 0.0001}
	res, err := SearchContext(ctx, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil || res.Adaptive.StopReason != StopCancelled {
		t.Fatalf("expected a cancelled stop, got %+v", res.Adaptive)
	}
	if res.TrialsDone != 0 {
		t.Errorf("pre-cancelled context ran %d trials", res.TrialsDone)
	}
}

func TestAdaptiveSearcherUsesCache(t *testing.T) {
	g := figure1(t)
	s := NewSearcher(g)
	opt := DefaultOptions()
	opt.Trials = 3000
	opt.AuditEvery = 500
	res, err := s.Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil || res.Adaptive.StopReason != StopCompleted {
		t.Fatalf("searcher adaptive run: %+v", res.Adaptive)
	}
	want, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != len(want.Estimates) {
		t.Fatalf("cached-candidate run diverges: %d vs %d estimates", len(res.Estimates), len(want.Estimates))
	}
	for i := range res.Estimates {
		if res.Estimates[i] != want.Estimates[i] {
			t.Errorf("estimate %d differs: %+v vs %+v", i, res.Estimates[i], want.Estimates[i])
		}
	}
}

func TestAdaptiveSearchStallWatchdog(t *testing.T) {
	g := figure1(t)
	// A healthy run finishes well before the watchdog budget.
	opt := Options{Method: MethodOS, Trials: 1000, StallTimeout: 30 * time.Second}
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil || res.Adaptive.StopReason != StopCompleted {
		t.Fatalf("watchdogged run: %+v", res.Adaptive)
	}
}

func TestAdaptiveOptionsValidation(t *testing.T) {
	g := figure1(t)
	cases := []Options{
		{Method: MethodExact, Epsilon: 0.1},
		{Method: MethodOS, Trials: 100, AuditEvery: 10},
		{Method: MethodOLSKL, Trials: 100, PrepTrials: 10, Epsilon: 0.1},
		{Method: MethodOS, Trials: 100, AuditEvery: -1},
		{Method: MethodOS, Trials: 100, Epsilon: -0.5},
		{Method: MethodOS, Trials: 100, StallTimeout: -time.Second},
	}
	for i, opt := range cases {
		if _, err := Search(g, opt); err == nil {
			t.Errorf("case %d: Search accepted invalid adaptive options %+v", i, opt)
		}
	}
}

func TestCheckpointStorePublicRoundTrip(t *testing.T) {
	g := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SearchContext(ctx, g, Options{Method: MethodOS, Trials: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ck := res.Checkpoint
	if ck == nil {
		t.Fatal("cancelled run carries no checkpoint")
	}
	store := NewCheckpointStore(DefaultRetryPolicy())
	path := t.TempDir() + "/run.ckpt"
	if err := store.Save(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	done, err := Search(g, Options{Method: MethodOS, Trials: 1000, Resume: got})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Search(g, Options{Method: MethodOS, Trials: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range done.Estimates {
		if done.Estimates[i] != want.Estimates[i] {
			t.Errorf("resumed estimate %d differs: %+v vs %+v", i, done.Estimates[i], want.Estimates[i])
		}
	}
	if _, err := store.Load(path + ".missing"); !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("missing checkpoint should exhaust retries, got %v", err)
	}
}
