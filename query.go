package mpmb

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// EdgeAnchor names a backbone edge (U ∈ L, V ∈ R) for an edge-anchored
// query.
type EdgeAnchor struct {
	U VertexID
	V VertexID
}

// Communities partitions the graph's vertices for a per-community query.
// Labels are arbitrary nonnegative integers; -1 excludes a vertex from
// every community. A butterfly belongs to community c exactly when all
// four of its vertices carry label c, so each community is searched on
// its induced subgraph and cross-community butterflies are out of scope
// by definition.
type Communities struct {
	// L / R give one label per left / right vertex (lengths must match
	// the graph's partition sizes).
	L []int
	R []int
	// TopK is how many of each community's estimates the merged top-level
	// Result.Estimates keeps; 0 means 1 (the per-community MPMB). The
	// full per-community results are always available in
	// Result.Communities.
	TopK int
}

// Query selects an MPMB query variant beyond the default global search.
// The zero value (and a nil Options.Query) is the global query. At most
// one of AnchorL, AnchorR and AnchorEdge may be set, and anchors cannot
// be combined with Community; AdaptivePrep composes with any of them.
//
// Anchored queries (AnchorL/AnchorR/AnchorEdge) restrict the search to
// butterflies containing the anchor: candidate preparation and the trial
// scans enumerate only the anchor's two-hop neighbourhood, so P(B) is
// the probability that B is (one of) the heaviest among the
// anchor-containing butterflies of a world. They support MethodExact,
// MethodOS, MethodOLS and MethodOLSKL, reject Resume, Executor and the
// adaptive supervisor options, and an anchor contained in no butterfly
// yields an empty Result. Anchored MethodExact runs are not
// interruptible (they are bounded by the 24-edge enumeration limit).
//
// Community queries run one search per community label over its induced
// subgraph, fanning communities out across Options.Workers (0 means
// GOMAXPROCS) with each community's run kept sequential; per-community
// seeds derive deterministically from (Options.Seed, label). The merged
// Result concatenates each community's top-k estimates and carries the
// full per-community results in Result.Communities.
//
// AdaptivePrep runs a sublinear butterfly-count pre-pass (sampled
// per-edge wedge expectations, after the approximate-counting literature)
// that sizes PrepTrials and picks the degradation-ladder entry point for
// the query — per community for community queries, anchored for anchored
// ones. The sizing decision is recorded in Result.Adaptive.PrepSizing.
// It applies to the OLS methods only (Options.PrepTrials is then
// ignored).
type Query struct {
	// AnchorL anchors the query on a left vertex.
	AnchorL *VertexID
	// AnchorR anchors the query on a right vertex.
	AnchorR *VertexID
	// AnchorEdge anchors the query on a backbone edge.
	AnchorEdge *EdgeAnchor
	// Community partitions the graph for a per-community top-k query.
	Community *Communities
	// AdaptivePrep sizes the OLS preparing phase (and ladder entry) from
	// an approximate butterfly-count pre-pass instead of
	// Options.PrepTrials.
	AdaptivePrep bool
}

// anchorCount is how many anchor fields are set.
func (q *Query) anchorCount() int {
	n := 0
	if q.AnchorL != nil {
		n++
	}
	if q.AnchorR != nil {
		n++
	}
	if q.AnchorEdge != nil {
		n++
	}
	return n
}

// anchored reports whether any anchor field is set.
func (q *Query) anchored() bool { return q.anchorCount() > 0 }

// active reports whether the query differs from the global default.
func (q *Query) active() bool {
	return q != nil && (q.anchored() || q.Community != nil || q.AdaptivePrep)
}

// anchorField names the set anchor field for error attribution.
func (q *Query) anchorField() (string, any) {
	switch {
	case q.AnchorL != nil:
		return "Query.AnchorL", *q.AnchorL
	case q.AnchorR != nil:
		return "Query.AnchorR", *q.AnchorR
	default:
		return "Query.AnchorEdge", fmt.Sprintf("(%d,%d)", q.AnchorEdge.U, q.AnchorEdge.V)
	}
}

// coreAnchor resolves the anchor against the graph, range-checking into
// typed *OptionErrors.
func (q *Query) coreAnchor(g *Graph) (core.Anchor, error) {
	switch {
	case q.AnchorL != nil:
		if int(*q.AnchorL) >= g.NumL() {
			return core.Anchor{}, &OptionError{Field: "Query.AnchorL", Value: *q.AnchorL, Reason: fmt.Sprintf("left vertex out of range [0,%d)", g.NumL())}
		}
		return core.Anchor{Kind: core.AnchorLeft, U: *q.AnchorL}, nil
	case q.AnchorR != nil:
		if int(*q.AnchorR) >= g.NumR() {
			return core.Anchor{}, &OptionError{Field: "Query.AnchorR", Value: *q.AnchorR, Reason: fmt.Sprintf("right vertex out of range [0,%d)", g.NumR())}
		}
		return core.Anchor{Kind: core.AnchorRight, V: *q.AnchorR}, nil
	default:
		e := *q.AnchorEdge
		val := fmt.Sprintf("(%d,%d)", e.U, e.V)
		if int(e.U) >= g.NumL() {
			return core.Anchor{}, &OptionError{Field: "Query.AnchorEdge", Value: val, Reason: fmt.Sprintf("left endpoint out of range [0,%d)", g.NumL())}
		}
		if int(e.V) >= g.NumR() {
			return core.Anchor{}, &OptionError{Field: "Query.AnchorEdge", Value: val, Reason: fmt.Sprintf("right endpoint out of range [0,%d)", g.NumR())}
		}
		a := core.Anchor{Kind: core.AnchorEdge, U: e.U, V: e.V}
		if err := a.Validate(g); err != nil {
			return core.Anchor{}, &OptionError{Field: "Query.AnchorEdge", Value: val, Reason: "not a backbone edge"}
		}
		return a, nil
	}
}

// validate checks the query's structural rules against the method (graph
// range checks happen at search time, with the same Field attribution).
func (q *Query) validate(o Options, m Method) error {
	anchors := q.anchorCount()
	if anchors > 1 {
		return &OptionError{Field: "Query", Value: fmt.Sprintf("%d anchors", anchors), Reason: "at most one of AnchorL, AnchorR and AnchorEdge may be set"}
	}
	if anchors > 0 && q.Community != nil {
		return &OptionError{Field: "Query.Community", Value: "set", Reason: "a community partition cannot be combined with an anchor"}
	}
	if c := q.Community; c != nil {
		if len(c.L) == 0 && len(c.R) == 0 {
			return &OptionError{Field: "Query.Community", Value: "empty", Reason: "community labels are empty; label every vertex (-1 excludes)"}
		}
		if c.TopK < 0 {
			return &OptionError{Field: "Query.Community", Value: c.TopK, Reason: "TopK cannot be negative"}
		}
	}
	if anchors > 0 && m == MethodMCVP {
		f, v := q.anchorField()
		return &OptionError{Field: f, Value: v, Reason: "anchored queries support exact, os, ols and ols-kl; mc-vp enumerates whole worlds and cannot restrict to the anchor"}
	}
	if q.active() {
		if o.Resume != nil {
			return &OptionError{Field: "Resume", Value: o.Resume, Reason: "query variants cannot resume from a checkpoint"}
		}
		if o.Executor != nil {
			return &OptionError{Field: "Executor", Value: o.Executor, Reason: "query variants do not support an explicit Executor yet; use Options.Workers"}
		}
	}
	if (anchors > 0 || q.Community != nil) && o.adaptive() {
		f, v := o.adaptiveField()
		return &OptionError{Field: f, Value: v, Reason: "adaptive supervision does not compose with anchored or per-community queries yet; use Query.AdaptivePrep for adaptive preparation sizing"}
	}
	if q.AdaptivePrep {
		switch m {
		case MethodOLS, MethodOLSKL, Method(""):
		default:
			return &OptionError{Field: "Query.AdaptivePrep", Value: true, Reason: fmt.Sprintf("adaptive preparation sizing applies to the OLS methods (method %q has no preparing phase)", m)}
		}
	}
	return nil
}

// attachSizing records the prep-sizing decision on the result, creating
// the adaptive report for runs that were not otherwise supervised.
func attachSizing(res *Result, s core.PrepSizing) {
	if res.Adaptive == nil {
		reason := core.StopCompleted
		if res.Partial {
			reason = core.StopCancelled
		}
		res.Adaptive = &core.AdaptiveReport{
			StopReason:      reason,
			FinalMethod:     res.Method,
			FinalPrepTrials: res.PrepTrials,
		}
	}
	res.Adaptive.PrepSizing = &s
}

// applySizing runs the pre-pass and rewrites the options in place:
// PrepTrials takes the sized budget and, for unsupervised runs whose
// expected butterfly population exceeds the listing ceiling, the method
// enters the degradation ladder at OS. Supervised runs keep their OLS
// entry — the supervisor owns ladder transitions.
func applySizing(g *Graph, opt *Options, method Method, anchor *core.Anchor) (core.PrepSizing, Method) {
	s := core.SizePrep(g, anchor, opt.Seed)
	opt.PrepTrials = s.PrepTrials
	if s.EntryMethod == "os" && !opt.adaptive() {
		method = MethodOS
	}
	return s, method
}

// searchAnchored runs a validated anchored query.
func searchAnchored(g *Graph, opt Options, method Method, interrupt func() bool) (*Result, error) {
	a, err := opt.Query.coreAnchor(g)
	if err != nil {
		return nil, err
	}
	var sizing *core.PrepSizing
	if opt.Query.AdaptivePrep {
		s, m := applySizing(g, &opt, method, &a)
		sizing, method = &s, m
	}
	probe := opt.Observer.probe(method, opt.Workers)
	var res *Result
	switch method {
	case MethodExact:
		res, err = core.ExactAnchored(g, a)
	case MethodOS:
		res, err = runAnchoredOS(g, a, opt, interrupt, probe)
	default: // MethodOLS, MethodOLSKL
		res, err = core.AnchoredOLS(g, a, core.OLSOptions{
			PrepTrials:  opt.PrepTrials,
			Trials:      opt.Trials,
			Seed:        opt.Seed,
			UseKarpLuby: method == MethodOLSKL,
			KL:          core.KLOptions{Mu: opt.Mu},
			Interrupt:   interrupt,
			Probe:       probe,
		}, opt.Workers)
	}
	if err != nil {
		return nil, err
	}
	if sizing != nil {
		attachSizing(res, *sizing)
	}
	finishMetrics(opt.Observer, res)
	return res, nil
}

// runAnchoredOS routes to the sequential or parallel anchored counting
// runner.
func runAnchoredOS(g *Graph, a core.Anchor, opt Options, interrupt func() bool, probe *telemetry.Probe) (*Result, error) {
	osOpt := core.OSOptions{
		Trials:    opt.Trials,
		Seed:      opt.Seed,
		Interrupt: interrupt,
		Probe:     probe,
	}
	if opt.Workers > 0 {
		return core.AnchoredOSParallel(g, a, osOpt, opt.Workers)
	}
	return core.AnchoredOS(g, a, osOpt)
}

// runAnchoredOrGlobalOS is the sized ladder-entry runner: when the
// pre-pass picks OS as the entry method, the run skips the preparing
// phase entirely — anchored when the anchor is set, global otherwise.
func runAnchoredOrGlobalOS(g *Graph, a core.Anchor, opt Options, interrupt func() bool) (*Result, error) {
	probe := opt.Observer.probe(MethodOS, opt.Workers)
	if a.Kind != 0 {
		return runAnchoredOS(g, a, opt, interrupt, probe)
	}
	osOpt := core.OSOptions{
		Trials:    opt.Trials,
		Seed:      opt.Seed,
		Interrupt: interrupt,
		Probe:     probe,
	}
	if opt.Workers > 0 {
		return core.OSParallel(g, osOpt, opt.Workers)
	}
	return core.OS(g, osOpt)
}

// searchCommunities runs a validated per-community query, fanning
// communities out across workers with the package-level runner.
func searchCommunities(g *Graph, opt Options, method Method, interrupt func() bool) (*Result, error) {
	subs, err := communitySubgraphs(g, opt.Query.Community)
	if err != nil {
		return nil, err
	}
	parts, err := runCommunities(subs, opt, func(i int, cg core.CommunityGraph, innerOpt Options) (*Result, error) {
		return searchHook(cg.G, innerOpt, interrupt)
	})
	if err != nil {
		return nil, err
	}
	return assembleCommunities(opt, method, parts)
}

// communitySubgraphs splits the graph, mapping spec errors to the
// Query.Community field.
func communitySubgraphs(g *Graph, c *Communities) ([]core.CommunityGraph, error) {
	subs, err := core.CommunitySubgraphs(g, core.CommunitySpec{L: c.L, R: c.R})
	if err != nil {
		return nil, &OptionError{
			Field:  "Query.Community",
			Value:  fmt.Sprintf("%d/%d labels", len(c.L), len(c.R)),
			Reason: err.Error(),
		}
	}
	return subs, nil
}

// runCommunities executes one run per community with bounded
// concurrency. run receives the community's index, subgraph and derived
// inner options, and returns the subgraph-relative result (remapping to
// parent ids happens here). The first error in community order wins.
func runCommunities(subs []core.CommunityGraph, opt Options, run func(i int, cg core.CommunityGraph, innerOpt Options) (*Result, error)) ([]core.CommunityResult, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(subs) {
		workers = len(subs)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]*Result, len(subs))
	errs := make([]error, len(subs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cg := subs[i]
			res, err := run(i, cg, communityInnerOptions(opt, cg.ID))
			if err != nil {
				errs[i] = fmt.Errorf("community %d: %w", cg.ID, err)
				return
			}
			results[i] = cg.RemapResult(res)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	parts := make([]core.CommunityResult, len(subs))
	for i, cg := range subs {
		parts[i] = core.CommunityResult{Community: cg.ID, Result: results[i]}
	}
	return parts, nil
}

// communityInnerOptions derives one community's run options: a
// per-community seed (deterministic in the top-level seed and the
// label), a sequential inner run (the fan-out happens at the community
// level), and no observer (the top-level result carries the merged
// metrics snapshot).
func communityInnerOptions(opt Options, id int) Options {
	inner := opt
	inner.Workers = 0
	inner.Observer = nil
	inner.Query = nil
	if opt.Query != nil && opt.Query.AdaptivePrep {
		inner.Query = &Query{AdaptivePrep: true}
	}
	inner.Seed = opt.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15
	return inner
}

// assembleCommunities merges the per-community parts into the top-level
// Result.
func assembleCommunities(opt Options, method Method, parts []core.CommunityResult) (*Result, error) {
	prep := 0
	switch method {
	case MethodOLS, MethodOLSKL:
		prep = opt.PrepTrials
	}
	res := core.AssembleCommunityResult(string(method), opt.Trials, prep, opt.Query.Community.TopK, parts)
	finishMetrics(opt.Observer, res)
	return res, nil
}
