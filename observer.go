package mpmb

import (
	"io"
	"net/http"

	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Event is one typed record on the observability stream: trial batches,
// candidate promotions, audit misses, supervisor escalations, checkpoint
// I/O, and running-estimate updates. Events marshal to JSON (the CLI's
// -journal flag writes one per line).
type Event = telemetry.Event

// EventKind identifies the type of an Event.
type EventKind = telemetry.EventKind

// The event kinds an Observer's OnEvent callback can receive.
const (
	// EventTrialDone reports a batch of completed sampling trials: Trial
	// is the last completed trial index, N the batch size.
	EventTrialDone = telemetry.EventTrialDone
	// EventCandidatePromoted reports a butterfly entering the candidate
	// set C_MB during the OLS preparing phase.
	EventCandidatePromoted = telemetry.EventCandidatePromoted
	// EventAuditMiss reports a maximum butterfly a supervisor coverage
	// audit found missing from C_MB (Lemma VI.5 coverage).
	EventAuditMiss = telemetry.EventAuditMiss
	// EventEscalation reports a supervisor method/prep transition.
	EventEscalation = telemetry.EventEscalation
	// EventCheckpointSaved reports a successful checkpoint save.
	EventCheckpointSaved = telemetry.EventCheckpointSaved
	// EventCheckpointRetried reports a retried checkpoint save/load
	// attempt.
	EventCheckpointRetried = telemetry.EventCheckpointRetried
	// EventEstimateUpdated reports the running leading estimate and its
	// normal-approximation half-width at 99% confidence.
	EventEstimateUpdated = telemetry.EventEstimateUpdated
)

// Metrics is a point-in-time snapshot of a run's counters, gauges, and
// the per-trial latency histogram. See Observer.Metrics and
// Result.Metrics.
type Metrics = telemetry.Metrics

// ObserverConfig configures NewObserver. The zero value is valid:
// metrics only, no event stream.
type ObserverConfig struct {
	// OnEvent, if non-nil, receives the run's event stream from a
	// dedicated goroutine. Delivery is best-effort through a bounded
	// ring: a callback slower than the event rate causes events to be
	// dropped (counted in Metrics.EventsDropped), never stalls sampling.
	// The callback must not retain the Event past its return if it
	// mutates it; copying the value is always safe.
	OnEvent func(Event)
	// EventBuffer is the ring capacity between the engine and OnEvent.
	// 0 selects a default (1024).
	EventBuffer int
}

// Observer collects run telemetry: attach one via Options.Observer and
// every search entry point (Search, SearchContext, the Searcher methods,
// and the deprecated SearchXXX facades) instruments its run with it.
//
// Counters are monotone and survive across sequential runs sharing the
// observer, which is what Prometheus-style scrapers expect; Metrics may
// be called concurrently with a running search for live progress. An
// Observer must not be shared by two concurrent runs — its per-worker
// counter shards are reconfigured at run start.
//
// A nil *Observer disables instrumentation entirely; the engine then
// pays a single predictable branch per trial batch and allocates
// nothing (guarded by the zero-alloc regression tests).
type Observer struct {
	reg *telemetry.Registry
	hub *telemetry.Hub
}

// NewObserver returns an observer ready to attach to Options.Observer.
func NewObserver(cfg ObserverConfig) *Observer {
	return &Observer{
		reg: telemetry.NewRegistry(),
		hub: telemetry.NewHub(cfg.EventBuffer, cfg.OnEvent),
	}
}

// Metrics returns a consistent snapshot of the observer's counters and
// gauges. Safe to call at any time, including concurrently with a
// running search (live progress) and on a nil observer (zero value).
func (o *Observer) Metrics() Metrics {
	if o == nil {
		return Metrics{}
	}
	m := o.reg.Snapshot()
	m.EventsDropped = o.hub.Dropped()
	return m
}

// Close stops the event stream: buffered events are drained into
// OnEvent and delivery finishes before Close returns. Idempotent; only
// needed when an OnEvent callback was configured, and only once the
// observer is no longer attached to a running search. Metrics stays
// usable after Close.
func (o *Observer) Close() {
	if o != nil {
		o.hub.Close()
	}
}

// HTTPHandler serves the observer's metrics over HTTP:
//
//	/metrics        Prometheus text exposition (version 0.0.4)
//	/debug/vars     expvar JSON, including an "mpmb" Metrics snapshot
//	/debug/pprof/   the standard net/http/pprof handlers
//
// The snapshot is taken per scrape, so a handler mounted while a search
// runs serves live numbers. The mpmb-search CLI mounts this behind its
// -metrics-addr flag.
func (o *Observer) HTTPHandler() http.Handler {
	return telemetry.HTTPHandler(o.Metrics)
}

// WritePrometheus renders the current snapshot in the Prometheus text
// exposition format — the same payload HTTPHandler serves at /metrics,
// for callers that want one-shot output (e.g. writing a file).
func (o *Observer) WritePrometheus(w io.Writer) error {
	return telemetry.WritePrometheus(w, o.Metrics())
}

// InstrumentStore attaches the observer to a CheckpointStore, counting
// successful saves and retried attempts (Metrics.CheckpointSaves /
// CheckpointRetries) and emitting EventCheckpointSaved /
// EventCheckpointRetried. A nil observer detaches instrumentation.
func (o *Observer) InstrumentStore(s *CheckpointStore) {
	if s == nil {
		return
	}
	if o == nil {
		s.SetProbe(nil)
		return
	}
	s.SetProbe(&telemetry.Probe{Reg: o.reg, Hub: o.hub, Phase: "checkpoint"})
}

// probe builds the internal instrumentation handle the core runners
// consume, sizing the per-worker counter shards for the run. Nil-safe:
// a nil observer yields the nil probe, the engine's disabled state.
func (o *Observer) probe(method Method, workers int) *telemetry.Probe {
	if o == nil {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	o.reg.EnsureWorkers(workers)
	return &telemetry.Probe{Reg: o.reg, Hub: o.hub, Method: string(method)}
}

// finishMetrics stamps a final snapshot onto the result; shared by every
// entry point so Result.Metrics is always the run-end view.
func finishMetrics(o *Observer, res *Result) {
	if o == nil || res == nil {
		return
	}
	m := o.Metrics()
	res.Metrics = &m
}
