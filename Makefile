# Development entry points for the mpmb repository.

GO ?= go

.PHONY: all build test test-race cover bench bench-compare microbench fuzz vet fmt experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Benchmark trajectory: time the flat-memory OS trial kernel against the
# frozen seed baseline on the pinned corpora (headline + secondary) and
# write BENCH_core.json (kernel/seed ns per trial, allocations, prune and
# prefix-fallback effectiveness, speedup).
bench:
	$(GO) run ./cmd/mpmb-bench perf -bench-out BENCH_core.json -secondary

# Re-run the core micro-benchmarks and diff them against the committed
# baseline. Uses benchstat when it is on PATH; otherwise degrades to
# printing the raw old/new numbers side by side (no network install is
# attempted, so this works offline).
BENCH_BASELINE := internal/core/testdata/bench_baseline.txt
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/core/ | tee /tmp/bench_new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASELINE) /tmp/bench_new.txt; \
	else \
		echo "benchstat not installed; raw comparison below (install golang.org/x/perf/cmd/benchstat for statistics)"; \
		echo "--- baseline ($(BENCH_BASELINE)) ---"; \
		grep '^Benchmark' $(BENCH_BASELINE) || true; \
		echo "--- new (/tmp/bench_new.txt) ---"; \
		grep '^Benchmark' /tmp/bench_new.txt || true; \
	fi

# All go-test micro-benchmarks (per paper table/figure plus ablations).
microbench:
	$(GO) test -bench=. -benchmem ./...

# Brief fuzzing sessions over both graph parsers.
fuzz:
	$(GO) test ./internal/bigraph/ -run '^FuzzRead$$' -fuzz '^FuzzRead$$' -fuzztime=30s
	$(GO) test ./internal/bigraph/ -run '^FuzzReadBinary$$' -fuzz '^FuzzReadBinary$$' -fuzztime=30s

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every paper table and figure (laptop-scaled defaults).
experiments:
	$(GO) run ./cmd/mpmb-bench -exp all

clean:
	$(GO) clean ./...
