# Development entry points for the mpmb repository.

GO ?= go

.PHONY: all build test test-race cover bench microbench fuzz vet fmt experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Benchmark trajectory: time the flat-memory OS trial kernel against the
# frozen seed baseline on the pinned corpus and write BENCH_core.json
# (kernel/seed ns per trial, allocations, prune effectiveness, speedup).
bench:
	$(GO) run ./cmd/mpmb-bench perf -bench-out BENCH_core.json

# All go-test micro-benchmarks (per paper table/figure plus ablations).
microbench:
	$(GO) test -bench=. -benchmem ./...

# Brief fuzzing sessions over both graph parsers.
fuzz:
	$(GO) test ./internal/bigraph/ -run '^FuzzRead$$' -fuzz '^FuzzRead$$' -fuzztime=30s
	$(GO) test ./internal/bigraph/ -run '^FuzzReadBinary$$' -fuzz '^FuzzReadBinary$$' -fuzztime=30s

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every paper table and figure (laptop-scaled defaults).
experiments:
	$(GO) run ./cmd/mpmb-bench -exp all

clean:
	$(GO) clean ./...
