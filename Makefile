# Development entry points for the mpmb repository.

GO ?= go

.PHONY: all build test test-race cover bench fuzz vet fmt experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Scaled-down benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Brief fuzzing sessions over both graph parsers.
fuzz:
	$(GO) test ./internal/bigraph/ -run '^FuzzRead$$' -fuzz '^FuzzRead$$' -fuzztime=30s
	$(GO) test ./internal/bigraph/ -run '^FuzzReadBinary$$' -fuzz '^FuzzReadBinary$$' -fuzztime=30s

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every paper table and figure (laptop-scaled defaults).
experiments:
	$(GO) run ./cmd/mpmb-bench -exp all

clean:
	$(GO) clean ./...
