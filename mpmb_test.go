package mpmb

import (
	"math"
	"path/filepath"
	"testing"
)

// figure1 builds the paper's running example through the public API.
func figure1(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 2, 0.6)
	b.MustAddEdge(0, 2, 1, 0.8)
	b.MustAddEdge(1, 0, 3, 0.3)
	b.MustAddEdge(1, 1, 3, 0.4)
	b.MustAddEdge(1, 2, 1, 0.7)
	return b.Build()
}

func TestPublicAPISearchAllMethods(t *testing.T) {
	g := figure1(t)
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	exactBest, _ := exact.Best()

	opt := DefaultOptions()
	opt.Trials = 30000
	for _, m := range []Method{MethodMCVP, MethodOS, MethodOLSKL, MethodOLS} {
		opt.Method = m
		res, err := Search(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		best, ok := res.Best()
		if !ok {
			t.Fatalf("%s: no result", m)
		}
		if math.Abs(best.P-exactBest.P) > 0.02 {
			t.Errorf("%s: best P = %v (%v), exact %v (%v)", m, best.P, best.B, exactBest.P, exactBest.B)
		}
	}

	opt.Method = MethodExact
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := res.Best(); b != exactBest {
		t.Fatalf("Search(exact) best %+v != Exact best %+v", b, exactBest)
	}

	opt.Method = "bogus"
	if _, err := Search(g, opt); err == nil {
		t.Fatal("Search accepted an unknown method")
	}
}

func TestPublicAPIDefaultsToOLS(t *testing.T) {
	g := figure1(t)
	opt := DefaultOptions()
	opt.Method = ""
	opt.Trials = 5000
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "ols" {
		t.Fatalf("default method = %q, want ols", res.Method)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := figure1(t)
	cases := []Options{
		{Method: MethodOS, Trials: 0},
		{Method: MethodOS, Trials: -5},
		{Method: MethodOLS, Trials: 100, PrepTrials: 0},
		{Method: MethodOLS, Trials: 100, PrepTrials: -1},
		{Method: MethodOLSKL, Trials: 100, PrepTrials: 10, Mu: 1.5},
	}
	for _, opt := range cases {
		if _, err := Search(g, opt); err == nil {
			t.Errorf("Search accepted invalid options %+v", opt)
		}
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := figure1(t)
	path := filepath.Join(t.TempDir(), "g.graph")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumL() != g.NumL() || g2.NumR() != g.NumR() {
		t.Fatal("round trip changed the graph")
	}
}

func TestPublicAPIFromEdgesAndButterfly(t *testing.T) {
	g, err := FromEdges(2, 2, []Edge{
		{U: 0, V: 0, W: 1, P: 1},
		{U: 0, V: 1, W: 1, P: 1},
		{U: 1, V: 0, W: 1, P: 1},
		{U: 1, V: 1, W: 1, P: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := NewButterfly(1, 0, 1, 0) // canonicalizes
	p, err := ExactProb(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Fatalf("ExactProb = %v, want 0.5 (the single uncertain edge)", p)
	}
}

func TestPublicAPIRequiredTrials(t *testing.T) {
	n, err := RequiredTrials(0.05, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n < 20000 || n > 25000 {
		t.Fatalf("RequiredTrials = %d, want ≈ 2×10⁴", n)
	}
	if _, err := RequiredTrials(0, 0.1, 0.1); err == nil {
		t.Fatal("RequiredTrials accepted mu=0")
	}
}

func TestPublicAPIDatasets(t *testing.T) {
	cfg := DatasetConfig{Seed: 1, Scale: 0.05}
	for _, name := range DatasetNames {
		d, err := GenerateDataset(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d.G.NumEdges() == 0 {
			t.Fatalf("%s: empty dataset", name)
		}
		// Public-API smoke: OLS completes on every generated dataset.
		res, err := SearchOLS(d.G, Options{Trials: 50, PrepTrials: 10, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := res.Best(); !ok {
			t.Fatalf("%s: no butterfly found", name)
		}
	}
	if _, err := GenerateDataset("bogus", cfg); err == nil {
		t.Fatal("GenerateDataset accepted an unknown name")
	}
	if got := len(GenerateAllDatasets(cfg)); got != 4 {
		t.Fatalf("GenerateAllDatasets returned %d, want 4", got)
	}
}

func TestTopKExtension(t *testing.T) {
	g := figure1(t)
	res, err := SearchOS(g, Options{Trials: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	top2 := res.TopK(2)
	if len(top2) != 2 {
		t.Fatalf("TopK(2) returned %d", len(top2))
	}
	if top2[0].P < top2[1].P {
		t.Fatal("TopK not sorted")
	}
}

func TestCountingFacade(t *testing.T) {
	g := figure1(t)
	if got := CountButterflies(g); got != 3 {
		t.Fatalf("CountButterflies = %d, want 3", got)
	}
	// E[#B] = Σ_B Pr[E(B)] over the three Figure 1 butterflies.
	want := 0.5*0.6*0.3*0.4 + 0.5*0.8*0.3*0.7 + 0.6*0.8*0.4*0.7
	if got := ExpectedButterflies(g); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedButterflies = %v, want %v", got, want)
	}
}

func TestSearchOSParallelFacade(t *testing.T) {
	g := figure1(t)
	opt := Options{Trials: 4000, Seed: 5}
	seq, err := SearchOS(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SearchOSParallel(g, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Estimates) != len(par.Estimates) {
		t.Fatalf("parallel/sequential estimate counts differ: %d vs %d", len(par.Estimates), len(seq.Estimates))
	}
	for i := range seq.Estimates {
		if seq.Estimates[i] != par.Estimates[i] {
			t.Fatalf("estimate %d differs: %+v vs %+v", i, par.Estimates[i], seq.Estimates[i])
		}
	}
	if _, err := SearchOSParallel(g, Options{Trials: 0}, 2); err == nil {
		t.Fatal("SearchOSParallel accepted Trials=0")
	}
}

func TestThresholdFacade(t *testing.T) {
	g := figure1(t)
	all, err := ButterfliesWithProbAtLeast(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("threshold 0 returned %d, want 3", len(all))
	}
	some, err := ButterfliesWithProbAtLeast(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 1 || math.Abs(some[0].P-0.1344) > 1e-12 {
		t.Fatalf("threshold 0.1 = %v, want the single 0.1344 butterfly", some)
	}
	if _, err := ButterfliesWithProbAtLeast(g, 2); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
}

func TestConfidenceIntervalFacade(t *testing.T) {
	g := figure1(t)
	res, err := SearchOS(g, Options{Trials: 10000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	lo, hi, ok := res.ConfidenceInterval(best.B, 1.96)
	if !ok || lo > best.P || hi < best.P {
		t.Fatalf("interval [%v,%v] ok=%v around %v", lo, hi, ok, best.P)
	}
}
