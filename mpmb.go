// Package mpmb searches uncertain bipartite weighted networks for the
// Most Probable Maximum Weighted Butterfly (MPMB) — the butterfly
// ((2,2)-biclique) with the highest probability of attaining the maximum
// butterfly weight over the network's possible worlds — implementing the
// algorithms of "Most Probable Maximum Weighted Butterfly Search"
// (ICDE 2025).
//
// # Model
//
// A network has two vertex partitions L and R; each edge (u ∈ L, v ∈ R)
// carries a weight and an independent existence probability. A possible
// world samples every edge by its probability; a butterfly B(u1,u2|v1,v2)
// present in a world competes by total edge weight, and P(B) accumulates
// the probability of the worlds where B is (one of) the heaviest.
// Computing P(B) exactly is #P-hard, so the package estimates it by
// sampling.
//
// # Methods
//
// Search runs the algorithm selected by Options.Method:
//
//   - MethodMCVP — the Monte-Carlo + vertex-priority baseline: every trial
//     enumerates all butterflies of a sampled world (Algorithm 1).
//   - MethodOS — Ordering Sampling: per-trial search in edge-weight order
//     with angle-ordering and pruning; ~10³× faster (Algorithm 2).
//   - MethodOLS / MethodOLSKL — Ordering-Listing Sampling: a short OS
//     preparing phase lists candidate butterflies, then a dedicated
//     estimator (the paper's optimized Algorithm 5, or Karp-Luby,
//     Algorithm 4) prices only the candidates.
//   - MethodExact — exhaustive possible-world enumeration, for small
//     graphs and ground truth.
//
// SearchContext adds cancellation with partial results and resume; the
// Searcher answers repeated queries against one graph with cached
// preparing phases; Result.TopK is the top-k MPMB extension. The
// per-method SearchXXX functions are deprecated facades over Search.
//
// # Quick start
//
//	b := mpmb.NewBuilder(2, 3)
//	b.MustAddEdge(0, 0, 2.0, 0.5) // (u1, v1): weight 2, probability 0.5
//	// ... add remaining edges ...
//	g := b.Build()
//	res, err := mpmb.Search(g, mpmb.DefaultOptions())
//	if err != nil { ... }
//	best, ok := res.Best()
//	fmt.Println(best.B, best.Weight, best.P)
//
// # Observability
//
// Attach an Observer via Options.Observer to instrument a run: monotone
// counters (trials, prune rates, audit health), a per-trial latency
// histogram, the running leader estimate with its confidence half-width,
// and a typed event stream. Instrumentation never changes results, and
// a nil Observer costs nothing on the trial hot path. Observer.Metrics
// gives live snapshots; Result.Metrics the run-end view;
// Observer.HTTPHandler serves Prometheus, expvar and pprof endpoints.
package mpmb

import (
	"fmt"
	"runtime"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Graph is an immutable uncertain bipartite weighted network.
type Graph = bigraph.Graph

// Builder incrementally constructs a Graph.
type Builder = bigraph.Builder

// Edge is one uncertain weighted edge; U indexes L, V indexes R.
type Edge = bigraph.Edge

// VertexID indexes a vertex within its partition.
type VertexID = bigraph.VertexID

// Butterfly is a canonical (2,2)-biclique identifier.
type Butterfly = butterfly.Butterfly

// NewButterfly canonicalizes the four vertices (u1, u2 ∈ L; v1, v2 ∈ R).
func NewButterfly(u1, u2, v1, v2 VertexID) Butterfly {
	return butterfly.New(u1, u2, v1, v2)
}

// Estimate is one butterfly's estimated probability of being maximum.
type Estimate = core.Estimate

// Result is the output of a search: estimates sorted by probability.
type Result = core.Result

// CommunityResult is one community's full result inside a per-community
// query's Result.Communities (see Query.Community).
type CommunityResult = core.CommunityResult

// PrepSizing records an adaptive prep-sizing pre-pass decision (see
// Query.AdaptivePrep); it appears in Result.Adaptive.PrepSizing.
type PrepSizing = core.PrepSizing

// Executor is the seam between a search and the machinery that executes
// its independent trial units (see Options.Executor): the in-process
// worker pool behind Options.Workers is the default implementation, and
// the dist coordinator's executor fans the same units out across worker
// processes. Implementations must honour the core contract — execute
// exactly the prefix of requested units, derive unit i's random stream
// from (seed, i), and return an additive payload — and then any executor
// yields bit-identical Results.
type Executor = core.TrialExecutor

// NewBuilder returns a Builder for a graph with |L| = numL, |R| = numR.
func NewBuilder(numL, numR int) *Builder { return bigraph.NewBuilder(numL, numR) }

// FromEdges builds a validated graph directly from an edge list.
func FromEdges(numL, numR int, edges []Edge) (*Graph, error) {
	return bigraph.FromEdges(numL, numR, edges)
}

// LoadGraph reads a graph file, auto-detecting the text or binary
// interchange format (see SaveGraph and SaveGraphBinary).
func LoadGraph(path string) (*Graph, error) { return bigraph.Load(path) }

// SaveGraph writes a graph in the text interchange format:
//
//	mpmb-bigraph <numL> <numR> <numEdges>
//	<u> <v> <weight> <probability>
//	...
func SaveGraph(path string, g *Graph) error { return bigraph.Save(path, g) }

// SaveGraphBinary writes a graph in the checksummed binary interchange
// format — preferable for million-edge datasets, where text parsing
// dominates load time. LoadGraph reads either format.
func SaveGraphBinary(path string, g *Graph) error { return bigraph.SaveBinary(path, g) }

// Search runs the method selected in opt — the package's canonical
// entry point. See SearchContext for the cancellable variant with
// partial results and resume, and the Searcher for repeated queries
// against one graph.
func Search(g *Graph, opt Options) (*Result, error) {
	return searchHook(g, opt, nil)
}

// searchHook is the shared dispatcher behind Search and SearchContext:
// it validates the options, threads the cancellation hook, resume
// checkpoint, and telemetry probe into the core runners, routes to the
// parallel runners when opt.Workers asks for them, and stamps the final
// Metrics snapshot onto the result.
func searchHook(g *Graph, opt Options, interrupt func() bool) (*Result, error) {
	method := opt.Method
	if method == "" {
		method = MethodOLS
	}
	if err := opt.validateFor(method); err != nil {
		return nil, err
	}
	if q := opt.Query; q != nil {
		if q.Community != nil {
			return searchCommunities(g, opt, method, interrupt)
		}
		if q.anchored() {
			return searchAnchored(g, opt, method, interrupt)
		}
	}
	var sizing *core.PrepSizing
	if q := opt.Query; q != nil && q.AdaptivePrep {
		s, m := applySizing(g, &opt, method, nil)
		sizing, method = &s, m
	}
	res, err := dispatch(g, opt, method, interrupt, opt.Observer.probe(method, opt.Workers))
	if err != nil {
		return nil, err
	}
	if sizing != nil {
		attachSizing(res, *sizing)
	}
	finishMetrics(opt.Observer, res)
	return res, nil
}

// dispatch routes a validated search to its core runner.
func dispatch(g *Graph, opt Options, method Method, interrupt func() bool, probe *telemetry.Probe) (*Result, error) {
	if opt.adaptive() {
		return core.Supervise(g, supervisorOptions(opt, method, interrupt, nil, probe))
	}
	switch method {
	case MethodExact:
		return core.ExactInterruptible(g, interrupt)
	case MethodMCVP:
		return core.MCVP(g, core.MCVPOptions{
			Trials:    opt.Trials,
			Seed:      opt.Seed,
			Interrupt: interrupt,
			Resume:    opt.Resume,
			Probe:     probe,
		})
	case MethodOS:
		osOpt := core.OSOptions{
			Trials:    opt.Trials,
			Seed:      opt.Seed,
			Interrupt: interrupt,
			Resume:    opt.Resume,
			Probe:     probe,
			Executor:  opt.Executor,
		}
		if opt.Workers > 0 || opt.Executor != nil {
			return core.OSParallel(g, osOpt, opt.Workers)
		}
		return core.OS(g, osOpt)
	case MethodOLS, MethodOLSKL:
		olsOpt := core.OLSOptions{
			PrepTrials:  opt.PrepTrials,
			Trials:      opt.Trials,
			Seed:        opt.Seed,
			UseKarpLuby: method == MethodOLSKL,
			KL:          core.KLOptions{Mu: opt.Mu},
			Interrupt:   interrupt,
			Resume:      opt.Resume,
			Probe:       probe,
			Executor:    opt.Executor,
		}
		if opt.Workers > 0 || opt.Executor != nil {
			return core.OLSParallel(g, olsOpt, opt.Workers)
		}
		return core.OLS(g, olsOpt)
	default:
		return nil, fmt.Errorf("mpmb: unknown method %q", opt.Method)
	}
}

// supervisorOptions maps the public adaptive options onto the core
// supervisor's configuration. prepared threads the Searcher's cached
// candidate set (nil for one-shot searches).
func supervisorOptions(opt Options, method Method, interrupt func() bool, prepared *core.Candidates, probe *telemetry.Probe) core.SupervisorOptions {
	return core.SupervisorOptions{
		Method:         string(method),
		Trials:         opt.Trials,
		PrepTrials:     opt.PrepTrials,
		Seed:           opt.Seed,
		Workers:        opt.Workers,
		AuditEvery:     opt.AuditEvery,
		MaxEscalations: opt.MaxEscalations,
		Epsilon:        opt.Epsilon,
		Deadline:       opt.Deadline,
		StallTimeout:   opt.StallTimeout,
		Interrupt:      interrupt,
		KL:             core.KLOptions{Mu: opt.Mu},
		Prepared:       prepared,
		Resume:         opt.Resume,
		Probe:          probe,
	}
}

// SearchMCVP runs the Monte-Carlo with Vertex Priority baseline
// (Algorithm 1) for opt.Trials sampled worlds.
//
// Deprecated: Use Search with Options.Method = MethodMCVP. Note that
// the query variants (Options.Query) are not available here: mc-vp
// cannot restrict its world enumeration to an anchor.
func SearchMCVP(g *Graph, opt Options) (*Result, error) {
	opt.Method = MethodMCVP
	return searchHook(g, opt, nil)
}

// SearchOS runs Ordering Sampling (Algorithm 2) for opt.Trials sampled
// worlds.
//
// Deprecated: Use Search with Options.Method = MethodOS — which also
// unlocks Options.Query (anchored and per-community variants) that this
// facade predates.
func SearchOS(g *Graph, opt Options) (*Result, error) {
	opt.Method = MethodOS
	return searchHook(g, opt, nil)
}

// SearchOSParallel is SearchOS with trials spread over the given number
// of goroutines (0 = GOMAXPROCS). Per-trial random streams are derived
// from (Seed, trial index), so results are bit-identical to SearchOS with
// the same options — only wall-clock time changes.
//
// Deprecated: Use Search with Options.Method = MethodOS and
// Options.Workers set (where Workers = 0 means sequential; pass
// runtime.GOMAXPROCS(0) for this function's workers = 0 behaviour).
// Note that unlike earlier releases this facade now honours the
// adaptive options (AuditEvery/Epsilon/Deadline/StallTimeout) instead
// of silently ignoring them.
func SearchOSParallel(g *Graph, opt Options, workers int) (*Result, error) {
	opt.Method = MethodOS
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opt.Workers = workers
	return searchHook(g, opt, nil)
}

// SearchOLS runs Ordering-Listing Sampling (Algorithm 3) with the paper's
// optimized shared-trial estimator (Algorithm 5).
//
// Deprecated: Use Search with Options.Method = MethodOLS (the
// default) — which also unlocks Options.Query (anchored search,
// per-community top-k, adaptive prep sizing) that this facade predates.
func SearchOLS(g *Graph, opt Options) (*Result, error) {
	opt.Method = MethodOLS
	return searchHook(g, opt, nil)
}

// SearchOLSKL runs Ordering-Listing Sampling with the Karp-Luby estimator
// (Algorithm 4) in the sampling phase. When opt.Mu > 0, per-candidate
// trial counts follow Equation 8 relative to opt.Trials.
//
// Deprecated: Use Search with Options.Method = MethodOLSKL — which
// also unlocks Options.Query (anchored and per-community variants) that
// this facade predates.
func SearchOLSKL(g *Graph, opt Options) (*Result, error) {
	opt.Method = MethodOLSKL
	return searchHook(g, opt, nil)
}

// Exact computes P(B) for every butterfly by enumerating all 2^|E|
// possible worlds. It refuses graphs with more than 24 edges; the
// exponential blow-up is precisely why the sampling methods exist.
func Exact(g *Graph) (*Result, error) { return core.Exact(g) }

// ExactProb computes the exact P(B) of one butterfly by world
// enumeration, under the same edge-count limit as Exact.
func ExactProb(g *Graph, b Butterfly) (float64, error) { return core.ExactProb(g, b) }

// CountButterflies returns the number of butterflies in the backbone
// graph (every edge present), computed combinatorially without
// materializing them.
func CountButterflies(g *Graph) uint64 { return butterfly.CountBackbone(g) }

// ExpectedButterflies returns the exact expected number of butterflies
// over all possible worlds, E[#butterflies] = Σ_B Pr[E(B)], by linearity
// of expectation — the uncertain butterfly counting primitive of the
// related work the paper builds on.
func ExpectedButterflies(g *Graph) float64 { return butterfly.ExpectedCount(g) }

// CountPMF is an empirical (or exact) probability mass function of the
// per-world butterfly count.
type CountPMF = butterfly.CountPMF

// ButterflyCountPMF estimates the distribution of the butterfly count
// over possible worlds from sampled trials — the distribution-based
// analysis of the paper's related work.
func ButterflyCountPMF(g *Graph, trials int, seed uint64) (*CountPMF, error) {
	return butterfly.EstimateCountPMF(g, trials, seed)
}

// ButterflyCountVariance returns the exact variance of the per-world
// butterfly count, from pairwise joint existence probabilities. It
// refuses graphs with more than a few thousand backbone butterflies (the
// computation is quadratic); estimate via ButterflyCountPMF there.
func ButterflyCountVariance(g *Graph) (float64, error) {
	return butterfly.CountVarianceExact(g)
}

// ButterflyWithProb pairs a butterfly with its weight and existence
// probability, as returned by ButterfliesWithProbAtLeast.
type ButterflyWithProb = butterfly.WithProb

// ButterfliesWithProbAtLeast lists every backbone butterfly whose
// existence probability Pr[E(B)] reaches the threshold, sorted by
// descending probability — the threshold-based mining of the paper's
// related work, with wedge-level pruning.
func ButterfliesWithProbAtLeast(g *Graph, threshold float64) ([]ButterflyWithProb, error) {
	return butterfly.EnumerateThreshold(g, threshold)
}

// RequiredTrials returns the ε-δ trial-number lower bound of Theorem
// IV.1: with N ≥ (1/mu)·(4·ln(2/δ)/ε²) trials, a Monte-Carlo estimate μ̂
// of a probability μ ≥ mu satisfies Pr(|μ̂−μ| > ε·μ) ≤ δ.
func RequiredTrials(mu, eps, delta float64) (int, error) {
	return core.MonteCarloTrials(mu, eps, delta)
}
