// Command quickstart reproduces the paper's running example (Figure 1):
// an uncertain bipartite network with two left vertices (u1, u2) and
// three right vertices (v1, v2, v3), searched for its Most Probable
// Maximum Weighted Butterfly with every method the library provides.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mpmb "github.com/uncertain-graphs/mpmb"
)

func main() {
	// Build the Figure 1 network: each edge has a weight and an
	// existence probability.
	b := mpmb.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5) // (u1, v1)
	b.MustAddEdge(0, 1, 2, 0.6) // (u1, v2)
	b.MustAddEdge(0, 2, 1, 0.8) // (u1, v3)
	b.MustAddEdge(1, 0, 3, 0.3) // (u2, v1)
	b.MustAddEdge(1, 1, 3, 0.4) // (u2, v2)
	b.MustAddEdge(1, 2, 1, 0.7) // (u2, v3)
	g := b.Build()

	fmt.Printf("graph: |L|=%d |R|=%d |E|=%d\n\n", g.NumL(), g.NumR(), g.NumEdges())

	// This graph has only 6 edges (64 possible worlds), so the exact
	// answer is computable — the sampling methods should agree with it.
	exact, err := mpmb.Exact(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact P(B) for every butterfly:")
	for _, e := range exact.Estimates {
		fmt.Printf("  %-14s weight=%-4g P=%.4f\n", e.B, e.Weight, e.P)
	}
	fmt.Println()

	opt := mpmb.DefaultOptions() // the paper's 2×10⁴-trial setup
	opt.Seed = 42
	for _, m := range []mpmb.Method{mpmb.MethodMCVP, mpmb.MethodOS, mpmb.MethodOLSKL, mpmb.MethodOLS} {
		opt.Method = m
		res, err := mpmb.Search(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		best, ok := res.Best()
		if !ok {
			log.Fatalf("%s found no butterfly", m)
		}
		fmt.Printf("%-7s MPMB = %-14s weight=%-4g P̂=%.4f (trials=%d)\n",
			m, best.B, best.Weight, best.P, res.Trials)
	}

	// The top-k extension (Section VII): more than one important region.
	res, err := mpmb.SearchOLS(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-3 MPMBs (OLS):")
	for i, e := range res.TopK(3) {
		fmt.Printf("  #%d %-14s weight=%-4g P̂=%.4f\n", i+1, e.B, e.Weight, e.P)
	}
}
