// Command brainnet reproduces the paper's Use Case 2 (Figure 3): top-10
// MPMB search over uncertain brain networks built from inter-hemisphere
// region connections.
//
// Vertices are regions of interest (ROIs), left hemisphere vs right
// hemisphere; edge weight is the physical distance between two ROIs and
// edge probability their activity correlation. The paper contrasts a
// Typical Controls (TC) group with an Autism Spectrum Disorder (ASD)
// group, whose long-range connections are weaker. Here the TC network is
// the ABIDE-like synthetic dataset, and the ASD network is derived from
// it by damping the correlation of long connections — the documented
// clinical signature. The top-10 MPMBs of the TC brain should therefore
// span visibly longer, stronger connections than the ASD ones.
//
// Run with:
//
//	go run ./examples/brainnet
package main

import (
	"fmt"
	"log"

	mpmb "github.com/uncertain-graphs/mpmb"
)

func main() {
	tcData, err := mpmb.GenerateDataset("abide", mpmb.DatasetConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	tc := tcData.G
	asd := dampLongConnections(tc)

	fmt.Printf("brain network: %d × %d ROIs, %d inter-hemisphere connections\n\n",
		tc.NumL(), tc.NumR(), tc.NumEdges())

	opt := mpmb.DefaultOptions()
	opt.Trials = 5000
	// A diffuse brain network spreads probability over many butterflies;
	// extra preparing trials widen the candidate set so ten
	// vertex-disjoint regions can be selected (Lemma VI.1).
	opt.PrepTrials = 600
	opt.Seed = 3

	for _, group := range []struct {
		name string
		g    *mpmb.Graph
	}{{"TC (typical controls)", tc}, {"ASD (autism spectrum)", asd}} {
		res, err := mpmb.SearchOLS(group.g, opt)
		if err != nil {
			log.Fatal(err)
		}
		// Vertex-disjoint selection scatters the ten markers across
		// distinct ROI clusters, as in the paper's Figure 3 rendering.
		top := res.TopKDisjoint(10)
		fmt.Printf("%s — top-10 vertex-disjoint MPMBs:\n", group.name)
		var sumW, sumP float64
		for i, e := range top {
			fmt.Printf("  #%-2d ROIs L(%d,%d) × R(%d,%d)  span=%.1fmm  P̂=%.3f\n",
				i+1, e.B.U1, e.B.U2, e.B.V1, e.B.V2, e.Weight, e.P)
			sumW += e.Weight
			sumP += e.P
		}
		if len(top) > 0 {
			fmt.Printf("  mean butterfly span %.1fmm, mean probability %.3f\n\n",
				sumW/float64(len(top)), sumP/float64(len(top)))
		}
	}
	fmt.Println("Expected signature (paper Fig. 3): the TC group's butterflies span")
	fmt.Println("longer distances at higher probability; the ASD group's long-range")
	fmt.Println("activity is depressed, concentrating its butterflies on short spans.")
}

// dampLongConnections derives the ASD-group network: connections longer
// than the median distance lose most of their correlation, modelling the
// lack of long-range connectivity the paper describes in ASD patients.
func dampLongConnections(tc *mpmb.Graph) *mpmb.Graph {
	edges := tc.Edges()
	total := 0.0
	for _, e := range edges {
		total += e.W
	}
	mean := total / float64(len(edges))

	damped := make([]mpmb.Edge, len(edges))
	for i, e := range edges {
		d := e
		if e.W > mean {
			d.P = e.P * 0.35
		}
		damped[i] = d
	}
	g, err := mpmb.FromEdges(tc.NumL(), tc.NumR(), damped)
	if err != nil {
		log.Fatal(err)
	}
	return g
}
