// Command protein demonstrates MPMB search at scale on the
// protein-interaction analogue of the paper's largest dataset (STRING):
// hundreds of thousands of uncertain edges, where only the
// Ordering-Listing methods remain practical. It sizes the trial budget
// from the paper's ε-δ theory, compares the optimized estimator against
// Karp-Luby on the same candidate set, and prints the top interactions.
//
// Run with:
//
//	go run ./examples/protein
package main

import (
	"fmt"
	"log"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
)

func main() {
	t0 := time.Now()
	d, err := mpmb.GenerateDataset("protein", mpmb.DatasetConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	g := d.G
	fmt.Printf("protein network: %d × %d proteins, %d interactions (generated in %v)\n",
		g.NumL(), g.NumR(), g.NumEdges(), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("probabilities: %s; weights: %s\n\n", d.ProbDesc, d.WeightDesc)

	// Size the sampling budget from Theorem IV.1: to pin down
	// probabilities ≥ 0.05 within 10% relative error at 90% confidence.
	trials, err := mpmb.RequiredTrials(0.05, 0.1, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem IV.1 trial bound for (μ=0.05, ε=δ=0.1): %d trials\n", trials)
	// A demo does not need the full guarantee; scale down but keep the
	// ratio honest in the printout.
	demoTrials := trials / 10
	fmt.Printf("running with %d trials (1/10 of the bound, demo scale)\n\n", demoTrials)

	opt := mpmb.Options{Trials: demoTrials, PrepTrials: 100, Seed: 11, Mu: 0.05}

	t0 = time.Now()
	ols, err := mpmb.SearchOLS(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	olsTime := time.Since(t0)

	t0 = time.Now()
	kl, err := mpmb.SearchOLSKL(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	klTime := time.Since(t0)

	fmt.Printf("OLS    (Alg. 5 estimator): %8v, %d candidates priced\n", olsTime.Round(time.Millisecond), len(ols.Estimates))
	fmt.Printf("OLS-KL (Alg. 4 estimator): %8v, %d candidates priced\n\n", klTime.Round(time.Millisecond), len(kl.Estimates))

	fmt.Println("top-5 most probable maximum-weight interaction quadruples (OLS):")
	for i, e := range ols.TopK(5) {
		klE, _ := kl.Lookup(e.B)
		fmt.Printf("  #%d proteins L(%d,%d) × R(%d,%d)  score=%.3f  P̂=%.3f (KL agrees: %.3f)\n",
			i+1, e.B.U1, e.B.U2, e.B.V1, e.B.V2, e.Weight, e.P, klE.P)
	}
}
