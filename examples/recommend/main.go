// Command recommend reproduces the paper's Use Case 1 (Figure 2):
// user-based collaborative filtering on an uncertain user–item network,
// where MPMB search with cold-item reward weights surfaces recommendations
// that plain most-probable-butterfly search misses.
//
// The first part is the paper's exact toy instance: Alice and Bob share
// two hot interests (football, Harry Potter — butterfly probability
// 0.5184) and two cold ones (skating, chess — probability 0.2352 but
// reward-weighted to 4.8). The MPMB is the cold butterfly: weight beats
// raw probability, diversifying the recommendation.
//
// The second part runs top-k MPMB on a MovieLens-like synthetic rating
// graph and turns the result into concrete "users like you also liked"
// suggestions.
//
// Run with:
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"

	mpmb "github.com/uncertain-graphs/mpmb"
)

func main() {
	figure2()
	fmt.Println()
	movieRecommendations()
}

// figure2 builds the Figure 2 network. Users: Alice=0, Bob=1. Items:
// football=0, Harry Potter=1, skating=2, chess=3. Hot-item edges keep
// weight 1; cold-item edges get the 1.2 reward weight the optimized
// UserCF variants assign.
func figure2() {
	users := []string{"Alice", "Bob"}
	items := []string{"football", "Harry Potter", "skating", "chess"}

	b := mpmb.NewBuilder(len(users), len(items))
	b.MustAddEdge(0, 0, 1.0, 0.9) // Alice – football
	b.MustAddEdge(0, 1, 1.0, 0.8) // Alice – Harry Potter
	b.MustAddEdge(1, 0, 1.0, 0.9) // Bob   – football
	b.MustAddEdge(1, 1, 1.0, 0.8) // Bob   – Harry Potter
	b.MustAddEdge(0, 2, 1.2, 0.7) // Alice – skating (cold: reward 1.2)
	b.MustAddEdge(0, 3, 1.2, 0.6) // Alice – chess
	b.MustAddEdge(1, 2, 1.2, 0.8) // Bob   – skating
	b.MustAddEdge(1, 3, 1.2, 0.7) // Bob   – chess
	g := b.Build()

	hot := mpmb.NewButterfly(0, 1, 0, 1)
	cold := mpmb.NewButterfly(0, 1, 2, 3)
	hotPr, _ := hot.ExistProb(g)
	coldPr, _ := cold.ExistProb(g)
	hotW, _ := hot.Weight(g)
	coldW, _ := cold.Weight(g)
	fmt.Println("Figure 2 — the two butterflies the paper contrasts:")
	fmt.Printf("  hot  (%s, %s):  Pr=%.4f  w=%.1f\n", items[0], items[1], hotPr, hotW)
	fmt.Printf("  cold (%s, %s):        Pr=%.4f  w=%.1f\n", items[2], items[3], coldPr, coldW)

	// Under the MPMB objective the reward weights flip the ranking: the
	// cold butterfly, whenever it exists, outweighs the hot one, so its
	// probability of being maximum stays near its existence probability
	// while the hot butterfly is usually dominated.
	hotP, err := mpmb.ExactProb(g, hot)
	if err != nil {
		log.Fatal(err)
	}
	coldP, err := mpmb.ExactProb(g, cold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact P(hot being maximum)  = %.4f\n", hotP)
	fmt.Printf("exact P(cold being maximum) = %.4f  <- the diversity rec wins\n", coldP)

	// With both interest groups in one graph, the overall MPMB may even
	// be a mixed hot+cold butterfly — print the true optimum too.
	res, err := mpmb.Exact(g)
	if err != nil {
		log.Fatal(err)
	}
	best, _ := res.Best()
	fmt.Printf("overall MPMB of the combined graph: users(%s,%s) × items(%s,%s), P=%.4f\n",
		users[best.B.U1], users[best.B.U2], items[best.B.V1], items[best.B.V2], best.P)
}

// movieRecommendations runs top-k MPMB over a synthetic MovieLens-like
// graph and prints item suggestions derived from the butterflies: each
// butterfly B(u1,u2 | v1,v2) says "u1 and u2 reliably co-like v1 and v2",
// so each user is recommended the other's items.
func movieRecommendations() {
	d, err := mpmb.GenerateDataset("movielens", mpmb.DatasetConfig{Seed: 7, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	g := d.G
	fmt.Printf("MovieLens-like rating graph: %d users × %d movies, %d ratings\n",
		g.NumL(), g.NumR(), g.NumEdges())

	opt := mpmb.DefaultOptions()
	opt.Trials = 5000 // plenty for a demo
	opt.Seed = 7
	res, err := mpmb.SearchOLS(g, opt)
	if err != nil {
		log.Fatal(err)
	}

	const k = 5
	fmt.Printf("top-%d MPMBs (strongest reliable taste overlaps):\n", k)
	for i, e := range res.TopK(k) {
		fmt.Printf("  #%d users(%d,%d) × movies(%d,%d)  weight=%.1f  P̂=%.3f\n",
			i+1, e.B.U1, e.B.U2, e.B.V1, e.B.V2, e.Weight, e.P)
		fmt.Printf("      → recommend movie %d to any user who liked movie %d (and vice versa)\n",
			e.B.V2, e.B.V1)
	}
}
