// Command analytics tours the library's analysis toolkit around a single
// uncertain network, the workflow a practitioner would run before and
// after an MPMB search:
//
//  1. structural counting — how many butterflies exist, how many to
//     expect per possible world, and the spread of that count;
//  2. threshold mining (the related work's approach) — which butterflies
//     are simply likely to exist, regardless of weight;
//  3. MPMB search through a Searcher, reusing one preparing phase while
//     sweeping sampling budgets, with Wilson confidence intervals on the
//     final estimates;
//  4. the comparison that motivates the paper: the most probable
//     butterfly and the most probable MAXIMUM WEIGHTED butterfly are
//     different objects.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	mpmb "github.com/uncertain-graphs/mpmb"
)

func main() {
	// A mid-sized synthetic workload: skewed degrees, rating-style
	// weights with ties, uniform probabilities.
	d, err := mpmb.GenerateSynthetic(mpmb.SyntheticConfig{
		Seed: 42, NumL: 300, NumR: 500, NumEdges: 6000,
		DegreeSkew: 0.8,
		Weights:    mpmb.WeightHalfStep,
		Probs:      mpmb.ProbUniform,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := d.G
	fmt.Printf("network: %d×%d vertices, %d uncertain edges\n\n", g.NumL(), g.NumR(), g.NumEdges())

	// 1. Counting analytics.
	fmt.Printf("backbone butterflies:          %d\n", mpmb.CountButterflies(g))
	fmt.Printf("expected butterflies/world:    %.1f\n", mpmb.ExpectedButterflies(g))
	if v, err := mpmb.ButterflyCountVariance(g); err == nil {
		fmt.Printf("count variance (exact):        %.1f\n", v)
	}
	pmf, err := mpmb.ButterflyCountPMF(g, 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count PMF (sampled):           mean %.1f, variance %.1f\n\n", pmf.Mean(), pmf.Variance())

	// 2. Threshold mining: existence probability alone.
	likely, err := mpmb.ButterfliesWithProbAtLeast(g, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("butterflies with Pr[exists] ≥ 0.25: %d\n", len(likely))
	if len(likely) > 0 {
		top := likely[0]
		fmt.Printf("  most probable: %v  Pr=%.3f  weight=%.1f\n\n", top.B, top.P, top.W)
	}

	// 3. MPMB search: one Searcher, one preparing phase, three budgets.
	s := mpmb.NewSearcher(g)
	nCands, err := s.CandidateCount(100, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OLS candidate set (100 preparing trials): %d butterflies\n", nCands)
	var final *mpmb.Result
	for _, trials := range []int{500, 2000, 8000} {
		res, err := s.Search(mpmb.Options{Method: mpmb.MethodOLS, Trials: trials, PrepTrials: 100, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		best, _ := res.Best()
		lo, hi, _ := res.ConfidenceInterval(best.B, 1.96)
		fmt.Printf("  N=%-5d MPMB %v  P̂=%.3f  95%% CI [%.3f, %.3f]\n", trials, best.B, best.P, lo, hi)
		final = res
	}
	fmt.Println()

	// 4. Most probable vs most probable maximum weighted.
	best, _ := final.Best()
	bestW, _ := best.B.Weight(g)
	if len(likely) > 0 {
		mp := likely[0]
		fmt.Println("most probable butterfly vs MPMB:")
		fmt.Printf("  most probable:  %v  Pr[exists]=%.3f  weight=%.1f\n", mp.B, mp.P, mp.W)
		fmt.Printf("  MPMB:           %v  P̂[maximum]=%.3f  weight=%.1f\n", best.B, best.P, bestW)
		if mp.B != best.B {
			fmt.Println("  → they differ: weight changes which butterflies matter (the paper's thesis)")
		}
	}
}
